package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestBootstrapBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	dist := Bootstrap(xs, 100, Mean, rand.New(rand.NewPCG(1, 1)))
	if len(dist) != 100 {
		t.Fatalf("len = %d, want 100", len(dist))
	}
	for _, v := range dist {
		if v < 1 || v > 5 {
			t.Fatalf("bootstrap mean %v outside sample range", v)
		}
	}
}

func TestBootstrapDegenerate(t *testing.T) {
	if got := Bootstrap(nil, 10, Mean, nil); got != nil {
		t.Errorf("Bootstrap(nil) = %v", got)
	}
	if got := Bootstrap([]float64{1}, 0, Mean, nil); got != nil {
		t.Errorf("Bootstrap(n=0) = %v", got)
	}
}

func TestBootstrapNilRNGDeterministic(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	a := Bootstrap(xs, 50, Mean, nil)
	b := Bootstrap(xs, 50, Mean, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nil-RNG bootstrap not deterministic")
		}
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 42))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 100 + 5*rng.NormFloat64()
	}
	lo, hi, err := func() (float64, float64, error) {
		lo, hi := BootstrapCI(xs, 500, Mean, 0.95, rand.New(rand.NewPCG(2, 2)))
		return lo, hi, nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatalf("lo %v >= hi %v", lo, hi)
	}
	if lo > 100 || hi < 100 {
		t.Errorf("CI [%v, %v] excludes true mean 100", lo, hi)
	}
	if hi-lo > 3 {
		t.Errorf("CI width %v implausibly wide", hi-lo)
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	lo, hi := BootstrapCI(nil, 100, Mean, 0.95, nil)
	if lo != 0 || hi != 0 {
		t.Errorf("degenerate CI = [%v, %v]", lo, hi)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	counts, edges := Histogram(xs, 5)
	if len(counts) != 5 || len(edges) != 6 {
		t.Fatalf("shape: counts=%d edges=%d", len(counts), len(edges))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("total count = %d, want %d", total, len(xs))
	}
	if edges[0] != 0 || edges[5] != 10 {
		t.Errorf("edges = %v", edges)
	}
	// The max value 10 lands in the last bin.
	if counts[4] != 3 { // 8, 9, 10
		t.Errorf("last bin = %d, want 3", counts[4])
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if c, e := Histogram(nil, 4); c != nil || e != nil {
		t.Error("expected nil for empty input")
	}
	if c, e := Histogram([]float64{1, 2}, 0); c != nil || e != nil {
		t.Error("expected nil for zero bins")
	}
	// All-identical values should not divide by zero.
	counts, _ := Histogram([]float64{5, 5, 5}, 3)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("identical-values total = %d", total)
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(xs, 2)
	want := []float64{1, 1.5, 2.5, 3.5, 4.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("MA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := MovingAverage(xs, 0); got != nil {
		t.Errorf("window 0 = %v", got)
	}
	if got := MovingAverage(nil, 3); got != nil {
		t.Errorf("nil input = %v", got)
	}
	// Window larger than the series: running mean of the prefix.
	got = MovingAverage([]float64{2, 4}, 10)
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("oversized window = %v", got)
	}
}
