package stats

import (
	"math/rand/v2"
	"sort"
	"sync"
)

// resamplePool recycles the per-call resample buffer. A campaign aggregates
// a bootstrap CI per (group, metric) cell — thousands of Bootstrap calls,
// each of which would otherwise allocate a scratch slice only to overwrite
// every element before use.
var resamplePool = sync.Pool{New: func() any { return new([]float64) }}

// Bootstrap draws nResamples bootstrap resamples of xs, applies statistic to
// each, and returns the resulting sampling distribution. The supplied RNG
// makes results reproducible; a nil rng uses a fixed-seed source.
func Bootstrap(xs []float64, nResamples int, statistic func([]float64) float64, rng *rand.Rand) []float64 {
	if len(xs) == 0 || nResamples <= 0 {
		return nil
	}
	if rng == nil {
		rng = rand.New(rand.NewPCG(0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9))
	}
	out := make([]float64, nResamples)
	bp := resamplePool.Get().(*[]float64)
	buf := *bp
	if cap(buf) < len(xs) {
		buf = make([]float64, len(xs))
	}
	buf = buf[:len(xs)]
	for r := range out {
		for i := range buf {
			buf[i] = xs[rng.IntN(len(xs))]
		}
		out[r] = statistic(buf)
	}
	*bp = buf
	resamplePool.Put(bp)
	return out
}

// BootstrapCI returns a (lo, hi) percentile bootstrap confidence interval of
// the given statistic at the given confidence level (e.g. 0.95).
func BootstrapCI(xs []float64, nResamples int, statistic func([]float64) float64, level float64, rng *rand.Rand) (lo, hi float64) {
	dist := Bootstrap(xs, nResamples, statistic, rng)
	if len(dist) == 0 {
		return 0, 0
	}
	// dist is freshly built and private; sort once in place and take both
	// percentiles from the sorted order instead of copy+sorting per tail.
	sort.Float64s(dist)
	alpha := (1 - level) / 2 * 100
	return percentileSorted(dist, alpha), percentileSorted(dist, 100-alpha)
}

// Histogram bins xs into nBins equal-width bins spanning [min, max] and
// returns the bin counts plus the bin edges (nBins+1 values). Values exactly
// equal to max land in the last bin.
func Histogram(xs []float64, nBins int) (counts []int, edges []float64) {
	if len(xs) == 0 || nBins <= 0 {
		return nil, nil
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if mx == mn {
		mx = mn + 1
	}
	counts = make([]int, nBins)
	edges = make([]float64, nBins+1)
	width := (mx - mn) / float64(nBins)
	for i := range edges {
		edges[i] = mn + float64(i)*width
	}
	for _, x := range xs {
		b := int((x - mn) / width)
		if b >= nBins {
			b = nBins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return counts, edges
}

// MovingAverage returns the trailing moving average of xs with the given
// window (the one-day moving average of Figure 1). Entries before a full
// window average over the available prefix.
func MovingAverage(xs []float64, window int) []float64 {
	if window <= 0 || len(xs) == 0 {
		return nil
	}
	out := make([]float64, len(xs))
	sum := 0.0
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
			out[i] = sum / float64(window)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out
}
