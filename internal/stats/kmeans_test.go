package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestKMeans1DThreeClusters(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var xs []float64
	// Three well-separated Gaussian blobs, like the low/medium/high
	// frequency clusters of Figure 6.
	for i := 0; i < 300; i++ {
		xs = append(xs, 1.6+0.02*rng.NormFloat64())
	}
	for i := 0; i < 500; i++ {
		xs = append(xs, 1.75+0.02*rng.NormFloat64())
	}
	for i := 0; i < 200; i++ {
		xs = append(xs, 1.9+0.02*rng.NormFloat64())
	}
	cl, err := KMeans1D(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cl.Centroids); got != 3 {
		t.Fatalf("len(Centroids) = %d", got)
	}
	// Centroids sorted ascending and near the blob centers.
	wantCenters := []float64{1.6, 1.75, 1.9}
	for i, c := range cl.Centroids {
		if math.Abs(c-wantCenters[i]) > 0.05 {
			t.Errorf("centroid[%d] = %v, want ~%v", i, c, wantCenters[i])
		}
	}
	wantSizes := []int{300, 500, 200}
	for i, s := range cl.Sizes {
		if math.Abs(float64(s-wantSizes[i])) > 30 {
			t.Errorf("size[%d] = %d, want ~%d", i, s, wantSizes[i])
		}
	}
}

func TestKMeans1DErrors(t *testing.T) {
	if _, err := KMeans1D(nil, 2); err != ErrKMeans {
		t.Errorf("nil input err = %v", err)
	}
	if _, err := KMeans1D([]float64{1, 2}, 3); err != ErrKMeans {
		t.Errorf("k>n err = %v", err)
	}
	if _, err := KMeans1D([]float64{5, 5, 5}, 2); err != ErrKMeans {
		t.Errorf("k>distinct err = %v", err)
	}
	if _, err := KMeans1D([]float64{1, 2, 3}, 0); err != ErrKMeans {
		t.Errorf("k=0 err = %v", err)
	}
}

func TestKMeans1DSingleCluster(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cl, err := KMeans1D(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !feq(cl.Centroids[0], 2.5, 1e-9) {
		t.Errorf("centroid = %v, want 2.5", cl.Centroids[0])
	}
	if cl.Sizes[0] != 4 {
		t.Errorf("size = %d, want 4", cl.Sizes[0])
	}
}

func TestKMeansMembers(t *testing.T) {
	xs := []float64{0, 0.1, 10, 10.1}
	cl, err := KMeans1D(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	low := cl.Members(0)
	high := cl.Members(1)
	if len(low) != 2 || len(high) != 2 {
		t.Fatalf("member counts = %d, %d", len(low), len(high))
	}
	if low[0] != 0 || low[1] != 1 {
		t.Errorf("low members = %v", low)
	}
	if high[0] != 2 || high[1] != 3 {
		t.Errorf("high members = %v", high)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64() * 10
	}
	a, err := KMeans1D(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans1D(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Centroids {
		if a.Centroids[i] != b.Centroids[i] {
			t.Fatalf("nondeterministic centroids: %v vs %v", a.Centroids, b.Centroids)
		}
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("nondeterministic assignments")
		}
	}
}

// Property: every sample is assigned to its nearest centroid, sizes sum to
// n, and centroids ascend.
func TestKMeansInvariants(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		xs := filterFinite(raw)
		if len(xs) < 2 {
			return true
		}
		k := int(kRaw)%3 + 1
		sortedXs := append([]float64(nil), xs...)
		sort.Float64s(sortedXs)
		if countDistinctSorted(sortedXs) < k {
			return true
		}
		cl, err := KMeans1D(xs, k)
		if err != nil {
			return false
		}
		total := 0
		for _, s := range cl.Sizes {
			total += s
		}
		if total != len(xs) {
			return false
		}
		for i := 1; i < len(cl.Centroids); i++ {
			if cl.Centroids[i] < cl.Centroids[i-1] {
				return false
			}
		}
		for i, x := range xs {
			a := cl.Assignments[i]
			da := math.Abs(x - cl.Centroids[a])
			for _, c := range cl.Centroids {
				if math.Abs(x-c) < da-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
