package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"powerstack/internal/obs"
)

func TestRunUntilDispatchesInTimeOrder(t *testing.T) {
	s := New()
	var got []string
	rec := func(name string) Handler {
		return func(time.Duration) error {
			got = append(got, name)
			return nil
		}
	}
	s.Schedule(3*time.Second, "c", rec("c"))
	s.Schedule(1*time.Second, "a", rec("a"))
	s.Schedule(2*time.Second, "b", rec("b"))
	if err := s.RunUntil(context.Background(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("dispatch order = %v, want %v", got, want)
		}
	}
	if s.Now() != 10*time.Second {
		t.Errorf("clock = %v after RunUntil, want 10s", s.Now())
	}
}

func TestSameTimeEventsDispatchFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		s.Schedule(time.Second, "tie", func(time.Duration) error {
			got = append(got, i)
			return nil
		})
	}
	if err := s.RunUntil(context.Background(), time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("dispatched %d events, want 50", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time dispatch order broke at %d: got %d (full: %v)", i, v, got)
		}
	}
}

func TestClockAdvancesToEachEvent(t *testing.T) {
	s := New()
	var at []time.Duration
	for _, d := range []time.Duration{5 * time.Second, time.Second, 3 * time.Second} {
		s.Schedule(d, "t", func(now time.Duration) error {
			if now != s.Now() {
				t.Errorf("handler now %v != clock %v", now, s.Now())
			}
			at = append(at, now)
			return nil
		})
	}
	if err := s.RunUntil(context.Background(), 4*time.Second); err != nil {
		t.Fatal(err)
	}
	if len(at) != 2 || at[0] != time.Second || at[1] != 3*time.Second {
		t.Fatalf("dispatched at %v, want [1s 3s]", at)
	}
	if s.Now() != 4*time.Second {
		t.Errorf("clock = %v, want horizon 4s", s.Now())
	}
	// The 5s event survives for a later run.
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	if err := s.RunUntil(context.Background(), 6*time.Second); err != nil {
		t.Fatal(err)
	}
	if len(at) != 3 || at[2] != 5*time.Second {
		t.Fatalf("second run dispatched at %v, want trailing 5s", at)
	}
}

func TestCancelSkipsPendingEvent(t *testing.T) {
	s := New()
	fired := false
	id := s.Schedule(time.Second, "x", func(time.Duration) error {
		fired = true
		return nil
	})
	if !s.Cancel(id) {
		t.Fatal("Cancel on pending event = false")
	}
	if s.Cancel(id) {
		t.Error("second Cancel = true, want false")
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d after cancel, want 0", s.Pending())
	}
	if err := s.RunUntil(context.Background(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if s.Dispatched() != 0 {
		t.Errorf("dispatched = %d, want 0", s.Dispatched())
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	s := New()
	var lateAt time.Duration
	s.Schedule(2*time.Second, "outer", func(now time.Duration) error {
		s.Schedule(time.Second, "late", func(at time.Duration) error {
			lateAt = at
			return nil
		})
		return nil
	})
	if err := s.RunUntil(context.Background(), 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if lateAt != 2*time.Second {
		t.Errorf("past-scheduled event ran at %v, want clamped to 2s", lateAt)
	}
}

func TestHandlerErrorAbortsRun(t *testing.T) {
	s := New()
	boom := errors.New("boom")
	s.Schedule(time.Second, "ok", func(time.Duration) error { return nil })
	s.Schedule(2*time.Second, "bad", func(time.Duration) error { return boom })
	ran := false
	s.Schedule(3*time.Second, "never", func(time.Duration) error {
		ran = true
		return nil
	})
	if err := s.RunUntil(context.Background(), 5*time.Second); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran {
		t.Error("event after the failing one still dispatched")
	}
	if s.Now() != 2*time.Second {
		t.Errorf("clock = %v after abort, want the failing event's 2s", s.Now())
	}
}

func TestContextCancellationStopsDispatch(t *testing.T) {
	s := New()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(time.Duration(i)*time.Second, "tick", func(time.Duration) error {
			n++
			if n == 3 {
				cancel()
			}
			return nil
		})
	}
	err := s.RunUntil(ctx, 20*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 3 {
		t.Errorf("dispatched %d events after cancel, want 3", n)
	}
}

func TestEverySchedulesChain(t *testing.T) {
	s := New()
	var at []time.Duration
	s.Every(time.Second, time.Second, 5*time.Second, "beat", func(now time.Duration) error {
		at = append(at, now)
		return nil
	})
	if err := s.RunUntil(context.Background(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if len(at) != 5 {
		t.Fatalf("fired %d times, want 5 (at %v)", len(at), at)
	}
	for i, a := range at {
		if a != time.Duration(i+1)*time.Second {
			t.Errorf("beat %d at %v, want %v", i, a, time.Duration(i+1)*time.Second)
		}
	}
}

func TestEveryStartBeyondUntilIsNoop(t *testing.T) {
	s := New()
	if id := s.Every(2*time.Second, time.Second, time.Second, "x", func(time.Duration) error { return nil }); id != 0 {
		t.Errorf("Every beyond until returned id %d, want 0", id)
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d, want 0", s.Pending())
	}
}

func TestDrainRunsUntilQueueEmpty(t *testing.T) {
	s := New()
	var got []time.Duration
	var chain func(now time.Duration) error
	chain = func(now time.Duration) error {
		got = append(got, now)
		if now < 3*time.Second {
			s.Schedule(now+time.Second, "chain", chain)
		}
		return nil
	}
	s.Schedule(time.Second, "chain", chain)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("drained %d events, want 3 (%v)", len(got), got)
	}
	if s.Now() != 3*time.Second {
		t.Errorf("clock = %v after drain, want the last event's 3s", s.Now())
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d after drain, want 0", s.Pending())
	}
}

func TestDispatchJournaledThroughObs(t *testing.T) {
	s := New()
	sink := obs.New()
	s.Obs = sink
	s.Schedule(time.Second, "alpha", func(time.Duration) error { return nil })
	s.Schedule(2*time.Second, "beta", func(time.Duration) error { return nil })
	if err := s.RunUntil(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	events := sink.Journal.Snapshot()
	var kinds []string
	for _, e := range events {
		if e.Type == obs.EvEngineDispatch {
			kinds = append(kinds, e.Scope)
		}
	}
	if len(kinds) != 2 || kinds[0] != "alpha" || kinds[1] != "beta" {
		t.Fatalf("journaled dispatches = %v, want [alpha beta]", kinds)
	}
	if s.Dispatched() != 2 {
		t.Errorf("Dispatched() = %d, want 2", s.Dispatched())
	}
}
