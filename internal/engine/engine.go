// Package engine is the stack's discrete-event simulation core: a
// deterministic scheduler over a virtual clock. Instead of advancing
// simulated time with a fixed-tick loop that pays full cost for every tick
// even when nothing happens, consumers schedule work at exact virtual
// times — a Poisson arrival, a job's analytically known completion, a
// fault's onset, a telemetry sample — and RunUntil dispatches events in
// time order, jumping the clock straight from one event to the next.
//
// Determinism is a contract: events at the same virtual time dispatch in
// the order they were scheduled (monotonic event IDs break ties), so two
// runs that schedule identically dispatch identically, regardless of Go
// map iteration order or goroutine interleaving. All methods are
// single-goroutine by design, like the simulation layers they drive.
package engine

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"powerstack/internal/obs"
)

// EventID identifies a scheduled event for cancellation. IDs are assigned
// from a monotonic counter and never reused within a scheduler.
type EventID uint64

// Handler is the callback an event dispatches. now is the event's virtual
// time (the clock has already advanced to it). A non-nil error aborts
// RunUntil and is returned to the caller.
type Handler func(now time.Duration) error

// Clock is the scheduler's virtual time. It advances only when events
// dispatch or a RunUntil horizon is reached — never with the wall clock —
// so a year of simulated quiet costs nothing.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time as an offset from the run start.
func (c *Clock) Now() time.Duration { return c.now }

// event is one heap entry.
type event struct {
	at        time.Duration
	seq       uint64
	kind      string
	fn        Handler
	cancelled bool
}

// eventHeap orders events by (time, sequence): earliest first, and FIFO
// among events at the same virtual time.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Scheduler is a deterministic discrete-event scheduler. The zero value is
// not usable; call New.
type Scheduler struct {
	clock   Clock
	heap    eventHeap
	pending map[EventID]*event
	nextSeq uint64

	dispatched uint64

	// Obs journals every event dispatch (kind, virtual time) when a sink
	// is attached; nil is free.
	Obs *obs.Sink
}

// New returns an empty scheduler with its clock at zero.
func New() *Scheduler {
	return &Scheduler{pending: map[EventID]*event{}}
}

// Clock exposes the scheduler's virtual clock (read-only for callers).
func (s *Scheduler) Clock() *Clock { return &s.clock }

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.clock.now }

// Schedule enqueues fn to run at virtual time at. Scheduling in the past
// clamps to the present: the event dispatches at the current clock, after
// the event being processed. kind labels the event for observability and
// debugging. Returns an ID usable with Cancel.
func (s *Scheduler) Schedule(at time.Duration, kind string, fn Handler) EventID {
	if fn == nil {
		panic("engine: nil handler")
	}
	if at < s.clock.now {
		at = s.clock.now
	}
	s.nextSeq++
	ev := &event{at: at, seq: s.nextSeq, kind: kind, fn: fn}
	heap.Push(&s.heap, ev)
	s.pending[EventID(ev.seq)] = ev
	return EventID(ev.seq)
}

// Every schedules fn at start, start+interval, start+2*interval, ... for
// every time not after until. Each occurrence is scheduled only after the
// previous one dispatches, so Cancel on the returned first ID stops the
// series only before it begins; to stop a running series, have fn return
// an error or guard it with a flag.
func (s *Scheduler) Every(start, interval, until time.Duration, kind string, fn Handler) EventID {
	if interval <= 0 {
		panic(fmt.Sprintf("engine: non-positive interval %v", interval))
	}
	if start > until {
		return 0
	}
	var wrap Handler
	wrap = func(now time.Duration) error {
		if err := fn(now); err != nil {
			return err
		}
		if next := now + interval; next <= until {
			s.Schedule(next, kind, wrap)
		}
		return nil
	}
	return s.Schedule(start, kind, wrap)
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false: already dispatched, cancelled, or never scheduled).
// Cancellation is lazy — the entry is skipped when it surfaces.
func (s *Scheduler) Cancel(id EventID) bool {
	ev, ok := s.pending[id]
	if !ok {
		return false
	}
	ev.cancelled = true
	delete(s.pending, id)
	return true
}

// Pending returns the number of scheduled, uncancelled events.
func (s *Scheduler) Pending() int { return len(s.pending) }

// Dispatched returns how many events have been dispatched over the
// scheduler's lifetime (cancelled events are not counted).
func (s *Scheduler) Dispatched() uint64 { return s.dispatched }

// RunUntil dispatches every event with time not after until, in
// (time, sequence) order, advancing the virtual clock to each event as it
// dispatches and finally to until. Context cancellation is checked before
// every dispatch; the first handler error (or ctx error) aborts the run
// with the clock left at the failing event's time. Events scheduled beyond
// until stay pending for a later RunUntil.
func (s *Scheduler) RunUntil(ctx context.Context, until time.Duration) error {
	for len(s.heap) > 0 && s.heap[0].at <= until {
		if err := ctx.Err(); err != nil {
			return err
		}
		ev := heap.Pop(&s.heap).(*event)
		if ev.cancelled {
			continue
		}
		delete(s.pending, EventID(ev.seq))
		s.clock.now = ev.at
		s.dispatched++
		s.Obs.EngineDispatch(ev.kind, ev.at)
		if err := ev.fn(ev.at); err != nil {
			return err
		}
	}
	if until > s.clock.now {
		s.clock.now = until
	}
	return nil
}

// Drain dispatches pending events in order until the queue is empty,
// leaving the clock at the last dispatched event's time. Use it when the
// run's end is defined by the work itself (a fixed iteration count) rather
// than a time horizon. Handlers that keep scheduling forever make Drain
// run forever; context cancellation remains the escape hatch.
func (s *Scheduler) Drain(ctx context.Context) error {
	for len(s.heap) > 0 {
		if err := s.RunUntil(ctx, s.heap[0].at); err != nil {
			return err
		}
	}
	return nil
}
