package node

import (
	"errors"
	"testing"

	"powerstack/internal/cpumodel"
	"powerstack/internal/kernel"
	"powerstack/internal/msr"
	"powerstack/internal/rapl"
	"powerstack/internal/units"
)

// Failure injection: every control and telemetry path must surface MSR
// access failures instead of silently proceeding with stale state.

var errFlaky = errors.New("msr_safe: device temporarily unavailable")

func TestSetPowerLimitSurfacesWriteFault(t *testing.T) {
	n := testNode(t)
	n.Sockets()[1].Dev.SetFault(msr.MSRPkgPowerLimit, errFlaky)
	if _, err := n.SetPowerLimit(200 * units.Watt); !errors.Is(err, errFlaky) {
		t.Errorf("err = %v, want the injected fault", err)
	}
	// Clearing the fault restores operation.
	n.Sockets()[1].Dev.SetFault(msr.MSRPkgPowerLimit, nil)
	if _, err := n.SetPowerLimit(200 * units.Watt); err != nil {
		t.Errorf("after clearing: %v", err)
	}
}

func TestPowerLimitSurfacesReadFault(t *testing.T) {
	n := testNode(t)
	n.Sockets()[0].Dev.SetFault(msr.MSRPkgPowerLimit, errFlaky)
	if _, err := n.PowerLimit(); !errors.Is(err, errFlaky) {
		t.Errorf("err = %v", err)
	}
	ph := phase(kernel.Config{Intensity: 8, Vector: kernel.YMM, Imbalance: 1})
	if _, err := n.WorkTime(ph); !errors.Is(err, errFlaky) {
		t.Errorf("WorkTime err = %v", err)
	}
	if _, err := n.CompleteIteration(ph, 0, 1); !errors.Is(err, errFlaky) {
		t.Errorf("CompleteIteration err = %v", err)
	}
}

func TestEnergySurfacesCounterFault(t *testing.T) {
	n := testNode(t)
	n.Sockets()[0].Dev.SetFault(msr.MSRPkgEnergyStatus, errFlaky)
	if _, err := n.Energy(); !errors.Is(err, errFlaky) {
		t.Errorf("err = %v", err)
	}
}

func TestRaplDomainFailsOnUnreadableUnitRegister(t *testing.T) {
	// A device whose unit register cannot be read must fail RAPL domain
	// binding (and hence node construction), not produce garbage units.
	dev := msr.NewDevice(nil)
	rapl.ProgramDefaults(dev, cpumodel.Quartz().TDP, cpumodel.Quartz().MinPowerLimit, 180*units.Watt)
	dev.SetFault(msr.MSRRaplPowerUnit, errFlaky)
	if _, err := rapl.NewDomain(dev); !errors.Is(err, errFlaky) {
		t.Errorf("err = %v, want the injected fault", err)
	}
}
