package node

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"powerstack/internal/cpumodel"
	"powerstack/internal/kernel"
	"powerstack/internal/msr"
	"powerstack/internal/units"
)

func testNode(t *testing.T) *Node {
	t.Helper()
	n, err := New("quartz-0001", cpumodel.Quartz(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func phase(cfg kernel.Config) cpumodel.Phase {
	return cpumodel.Phase{Work: cfg.CriticalWork(), Vector: cfg.Vector}
}

func TestNewNodeDefaults(t *testing.T) {
	n := testNode(t)
	if len(n.Sockets()) != SocketsPerNode {
		t.Fatalf("sockets = %d", len(n.Sockets()))
	}
	if n.TDP() != 240*units.Watt {
		t.Errorf("node TDP = %v, want 240 W", n.TDP())
	}
	if n.MinLimit() != 136*units.Watt {
		t.Errorf("node min limit = %v, want 136 W", n.MinLimit())
	}
	// Power-on limit is TDP.
	limit, err := n.PowerLimit()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(limit.Watts()-240) > 0.5 {
		t.Errorf("power-on limit = %v, want 240 W", limit)
	}
	if n.Eta() != 1.0 {
		t.Errorf("eta = %v", n.Eta())
	}
}

func TestSetPowerLimitRoundTrip(t *testing.T) {
	n := testNode(t)
	got, err := n.SetPowerLimit(180 * units.Watt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Watts()-180) > 0.5 {
		t.Errorf("programmed limit = %v, want 180 W", got)
	}
	read, err := n.PowerLimit()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(read.Watts()-got.Watts()) > 1e-9 {
		t.Errorf("read-back %v != programmed %v", read, got)
	}
}

func TestSetPowerLimitClamps(t *testing.T) {
	n := testNode(t)
	got, err := n.SetPowerLimit(50 * units.Watt) // below node minimum
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Watts()-136) > 0.5 {
		t.Errorf("clamped limit = %v, want 136 W", got)
	}
	got, err = n.SetPowerLimit(500 * units.Watt) // above TDP
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Watts()-240) > 0.5 {
		t.Errorf("clamped limit = %v, want 240 W", got)
	}
}

func TestWorkTimeSlowsUnderCap(t *testing.T) {
	n := testNode(t)
	ph := phase(kernel.Config{Intensity: 32, Vector: kernel.YMM, Imbalance: 1})
	fast, err := n.WorkTime(ph)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.SetPowerLimit(140 * units.Watt); err != nil {
		t.Fatal(err)
	}
	slow, err := n.WorkTime(ph)
	if err != nil {
		t.Fatal(err)
	}
	if slow <= fast {
		t.Errorf("capped work time %v not slower than uncapped %v", slow, fast)
	}
}

func TestCompleteIterationAccounting(t *testing.T) {
	n := testNode(t)
	ph := phase(kernel.Config{Intensity: 8, Vector: kernel.YMM, Imbalance: 1})
	wt, err := n.WorkTime(ph)
	if err != nil {
		t.Fatal(err)
	}
	iter := 2 * wt // half the iteration is spin
	res, err := n.CompleteIteration(ph, iter, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkTime != wt {
		t.Errorf("WorkTime = %v, want %v", res.WorkTime, wt)
	}
	if res.Energy <= 0 {
		t.Errorf("Energy = %v", res.Energy)
	}
	if res.MeanPower <= 0 || res.MeanPower > n.TDP() {
		t.Errorf("MeanPower = %v", res.MeanPower)
	}
	wantFlops := float64(ph.Work.Flops) * 34
	if math.Abs(float64(res.Flops)-wantFlops) > 1 {
		t.Errorf("Flops = %v, want %v", res.Flops, wantFlops)
	}
	// Spin power < work power, so the mean power over a half-spin
	// iteration is below the pure-work power.
	resFull, err := n.CompleteIteration(ph, res.WorkTime, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPower >= resFull.MeanPower {
		t.Errorf("spin-heavy mean power %v >= pure-work %v", res.MeanPower, resFull.MeanPower)
	}
}

func TestCompleteIterationClampsShortBarrier(t *testing.T) {
	n := testNode(t)
	ph := phase(kernel.Config{Intensity: 8, Vector: kernel.YMM, Imbalance: 1})
	res, err := n.CompleteIteration(ph, time.Nanosecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	// iterTime shorter than the work time is extended to the work time.
	if res.WorkTime <= time.Nanosecond {
		t.Errorf("WorkTime = %v", res.WorkTime)
	}
	if res.MeanPower <= 0 {
		t.Errorf("MeanPower = %v", res.MeanPower)
	}
}

func TestEnergyCounterMatchesReportedEnergy(t *testing.T) {
	n := testNode(t)
	if _, err := n.Energy(); err != nil { // prime the wrap tracker
		t.Fatal(err)
	}
	ph := phase(kernel.Config{Intensity: 4, Vector: kernel.YMM, Imbalance: 1})
	var want units.Energy
	for i := 0; i < 10; i++ {
		res, err := n.CompleteIteration(ph, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		want += res.Energy
	}
	got, err := n.Energy()
	if err != nil {
		t.Fatal(err)
	}
	// One energy LSB (15.3 uJ) per socket per iteration of slack.
	if math.Abs(got.Joules()-want.Joules()) > 0.001 {
		t.Errorf("MSR energy = %v, accumulated = %v", got, want)
	}
}

func TestAchievedFrequencyFromCounters(t *testing.T) {
	n := testNode(t)
	_, a0, m0 := n.AchievedFrequency(0, 0)
	ph := phase(kernel.Config{Intensity: 8, Vector: kernel.YMM, Imbalance: 1})
	if _, err := n.SetPowerLimit(140 * units.Watt); err != nil {
		t.Fatal(err)
	}
	res, err := n.CompleteIteration(ph, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	freq, _, _ := n.AchievedFrequency(a0, m0)
	if math.Abs(freq.GHz()-res.AchievedFreq.GHz()) > 0.02 {
		t.Errorf("counter frequency %v vs result %v", freq, res.AchievedFreq)
	}
	// Under a 140 W node cap the most power-hungry workload cannot hold
	// turbo.
	if freq >= n.Spec().MaxTurbo {
		t.Errorf("achieved frequency %v not throttled", freq)
	}
}

func TestAchievedFrequencyZeroDelta(t *testing.T) {
	n := testNode(t)
	_, a, m := n.AchievedFrequency(0, 0)
	f, _, _ := n.AchievedFrequency(a, m)
	if f != 0 {
		t.Errorf("zero-delta frequency = %v, want 0", f)
	}
}

func TestDRAMEnergyTracksMemoryIntensity(t *testing.T) {
	// A memory-bound workload keeps the channels saturated; a compute-
	// bound one barely touches them. DRAM power per unit time must
	// reflect that, and the MSR counter must agree with the results.
	dram := func(intensity float64) (units.Power, units.Energy) {
		n := testNode(t)
		if _, err := n.DRAMEnergy(); err != nil { // prime
			t.Fatal(err)
		}
		ph := phase(kernel.Config{Intensity: intensity, Vector: kernel.YMM, Imbalance: 1})
		var total units.Energy
		var elapsed time.Duration
		for i := 0; i < 5; i++ {
			res, err := n.CompleteIteration(ph, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			total += res.DRAMEnergy
			elapsed += res.WorkTime
		}
		counter, err := n.DRAMEnergy()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(counter.Joules()-total.Joules()) > 0.001 {
			t.Errorf("MSR DRAM counter %v != accumulated %v", counter, total)
		}
		return units.MeanPower(total, elapsed), total
	}
	memPower, _ := dram(0.25)
	compPower, _ := dram(32)
	// Memory-bound: both sockets near DRAMMaxPower (36 W/node);
	// compute-bound: near idle.
	if memPower.Watts() < 30 || memPower.Watts() > 37 {
		t.Errorf("memory-bound DRAM power = %v, want ~36 W", memPower)
	}
	if compPower.Watts() > 20 {
		t.Errorf("compute-bound DRAM power = %v, want near idle", compPower)
	}
	if compPower >= memPower {
		t.Error("DRAM power should follow memory intensity")
	}
}

// Property: iteration energy grows with iteration time (spinning costs
// energy), and mean power stays within [0, TDP + slack].
func TestIterationEnergyMonotoneInBarrierTime(t *testing.T) {
	n := testNode(t)
	ph := phase(kernel.Config{Intensity: 2, Vector: kernel.YMM, Imbalance: 1})
	wt, err := n.WorkTime(ph)
	if err != nil {
		t.Fatal(err)
	}
	f := func(extraMsRaw uint8) bool {
		extraA := time.Duration(extraMsRaw%100) * time.Millisecond
		extraB := extraA + 10*time.Millisecond
		ra, err := n.CompleteIteration(ph, wt+extraA, 1)
		if err != nil {
			return false
		}
		rb, err := n.CompleteIteration(ph, wt+extraB, 1)
		if err != nil {
			return false
		}
		return rb.Energy > ra.Energy && ra.MeanPower <= n.TDP()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCloneIsolation(t *testing.T) {
	n := testNode(t)
	if _, err := n.SetPowerLimit(200 * units.Watt); err != nil {
		t.Fatal(err)
	}
	c := n.Clone()
	if c.ID != n.ID || c.Eta() != n.Eta() {
		t.Errorf("clone identity: ID=%q eta=%v, want %q/%v", c.ID, c.Eta(), n.ID, n.Eta())
	}
	// The programmed limit carries over...
	limit, err := c.PowerLimit()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(limit.Watts()-200) > 0.5 {
		t.Errorf("clone limit = %v, want 200 W", limit)
	}
	// ...but subsequent programming diverges.
	if _, err := c.SetPowerLimit(150 * units.Watt); err != nil {
		t.Fatal(err)
	}
	limit, err = n.PowerLimit()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(limit.Watts()-200) > 0.5 {
		t.Errorf("original limit = %v after clone write, want 200 W", limit)
	}
	// Running work on the clone advances only the clone's counters.
	ph := phase(kernel.Config{Intensity: 8, Vector: kernel.YMM, Imbalance: 1})
	if _, err := c.CompleteIteration(ph, 0, 1); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < SocketsPerNode; s++ {
		orig := n.Sockets()[s].Dev.PrivilegedRead(msr.MSRPkgEnergyStatus)
		cl := c.Sockets()[s].Dev.PrivilegedRead(msr.MSRPkgEnergyStatus)
		if cl <= orig {
			t.Errorf("socket %d: clone energy %d not ahead of original %d", s, cl, orig)
		}
	}
}

func TestCloneCarriesInjectedFaults(t *testing.T) {
	n := testNode(t)
	n.Sockets()[0].Dev.SetFault(msr.MSRPkgPowerLimit, errFlaky)
	c := n.Clone()
	if _, err := c.SetPowerLimit(180 * units.Watt); !errors.Is(err, errFlaky) {
		t.Errorf("clone err = %v, want the injected fault", err)
	}
}
