// Package node assembles the per-host hardware stack: two Broadwell sockets
// (Table I), each with a simulated MSR register file and a RAPL package
// domain. All power control flows in through MSR_PKG_POWER_LIMIT and all
// telemetry flows out through MSR_PKG_ENERGY_STATUS and APERF/MPERF,
// exactly the plumbing GEOPM uses via msr-safe on the real Quartz system.
//
// The node is the meeting point of the two halves of the stack: the
// resource manager and job runtime write limits; the bulk-synchronous
// engine (package bsp) asks the node to execute iterations, which advances
// the counters those layers later read.
package node

import (
	"fmt"
	"time"

	"powerstack/internal/cpumodel"
	"powerstack/internal/msr"
	"powerstack/internal/obs"
	"powerstack/internal/rapl"
	"powerstack/internal/units"
)

// SocketUnit is one physical socket: its analytic model plus the MSR/RAPL
// plumbing bound to it.
type SocketUnit struct {
	Model cpumodel.Socket
	Dev   *msr.Device
	Rapl  *rapl.Domain
}

// Node is one compute host.
type Node struct {
	ID      string
	sockets []*SocketUnit

	// IdleWait switches barrier waiting from spin-polling (the MPI
	// default the paper measures) to blocking in a C-state. Used by the
	// spin-wait ablation; production runs leave it false.
	IdleWait bool

	// degrade multiplies the node's work time when > 1, modeling a slowed
	// host (thermal throttling, a sick DIMM, a noisy neighbor on shared
	// storage). Fault plans set it through SetDegradation; zero means
	// healthy.
	degrade float64

	// op memoizes the steady-state operating point for the last
	// (phase, cap) pair: across the 100 iterations of a run the cap and
	// phase are constant, so resolving frequency by binary search once
	// per run instead of once per iteration dominates simulation speed.
	op      opPoint
	opValid bool

	// sink receives limit-write and frequency-pin events when
	// observability is enabled; nil costs one comparison per write.
	sink *obs.Sink

	// capTables caches immutable frequency→power inversion tables per
	// phase (plus one for the spin loop), built lazily on first resolve.
	// Tables derive purely from the socket model, so clones share them;
	// the maps themselves are per-node (a node is single-goroutine-owned).
	capTables map[capKey]*cpumodel.CapTable
	spinTable *cpumodel.CapTable
}

// capKey identifies a cached cap table by the work mix that shaped it.
type capKey struct {
	traffic units.Bytes
	flops   units.Flops
	vector  int
}

// capTableFor returns (building if needed) the cap-inversion table of the
// phase's work mix.
func (n *Node) capTableFor(ph cpumodel.Phase) *cpumodel.CapTable {
	k := capKey{traffic: ph.Work.Traffic, flops: ph.Work.Flops, vector: int(ph.Vector)}
	if t, ok := n.capTables[k]; ok {
		return t
	}
	if n.capTables == nil {
		n.capTables = make(map[capKey]*cpumodel.CapTable, 8)
	}
	t := cpumodel.NewCapTable(n.sockets[0].Model, ph)
	n.capTables[k] = t
	return t
}

// spinCapTable returns (building if needed) the spin-loop cap table.
func (n *Node) spinCapTable() *cpumodel.CapTable {
	if n.spinTable == nil {
		n.spinTable = cpumodel.NewSpinCapTable(n.sockets[0].Model)
	}
	return n.spinTable
}

// SetObs attaches an observability sink to the node and its RAPL domains.
// A nil sink detaches.
func (n *Node) SetObs(s *obs.Sink) {
	n.sink = s
	for _, su := range n.sockets {
		su.Rapl.SetObs(s, n.ID)
	}
}

// opPoint caches a resolved steady state.
type opPoint struct {
	traffic  units.Bytes
	flops    units.Flops
	vector   int
	cap      units.Power
	pin      units.Frequency
	idleWait bool

	fWork units.Frequency
	tWork time.Duration
	pWork units.Power
	fSpin units.Frequency
	pSpin units.Power
	// uMem is the memory-pipe utilization of the work phase, which sets
	// the DRAM domain's draw.
	uMem float64
}

// resolve returns the steady-state operating point of the phase under the
// given per-socket cap and the current frequency pin, memoized.
func (n *Node) resolve(ph cpumodel.Phase, cap units.Power) opPoint {
	pin := n.frequencyPin()
	if n.opValid &&
		n.op.traffic == ph.Work.Traffic && n.op.flops == ph.Work.Flops &&
		n.op.vector == int(ph.Vector) && n.op.cap == cap &&
		n.op.pin == pin && n.op.idleWait == n.IdleWait {
		return n.op
	}
	m := n.sockets[0].Model
	fWork := n.capTableFor(ph).FrequencyForCap(cap)
	fSpin := n.spinCapTable().FrequencyForCap(cap)
	if pin > 0 {
		// A P-state request (IA32_PERF_CTL) is a ceiling: RAPL can still
		// clamp below it, but the core never exceeds the requested ratio.
		if pin < fWork {
			fWork = pin
		}
		if pin < fSpin {
			fSpin = pin
		}
	}
	pSpin := m.SpinPowerAt(fSpin)
	if n.IdleWait {
		fSpin = m.Spec.MinFreq
		pSpin = m.IdleWaitPower()
	}
	tWork, pWork, util := m.Operate(ph, fWork)
	n.op = opPoint{
		traffic:  ph.Work.Traffic,
		flops:    ph.Work.Flops,
		vector:   int(ph.Vector),
		cap:      cap,
		pin:      pin,
		idleWait: n.IdleWait,
		fWork:    fWork,
		tWork:    tWork,
		pWork:    pWork,
		fSpin:    fSpin,
		pSpin:    pSpin,
		uMem:     util.Mem,
	}
	n.opValid = true
	return n.op
}

// SetDegradation sets a work-time multiplier modeling a slowed host; f <= 1
// restores nominal speed. The slowdown stretches compute time (the node
// arrives later at every barrier) without changing the power model, which is
// how a throttling host looks to the rest of the stack.
func (n *Node) SetDegradation(f float64) {
	if f <= 1 {
		n.degrade = 0
		return
	}
	n.degrade = f
}

// Degradation returns the current work-time multiplier (1 when healthy).
func (n *Node) Degradation() float64 {
	if n.degrade > 1 {
		return n.degrade
	}
	return 1
}

// SetFrequencyPin requests a P-state ceiling through IA32_PERF_CTL on both
// sockets (the DVFS control path GEOPM's frequency agents use). The
// request is quantized to the socket's P-state step and clipped to its
// range; passing 0 clears the pin. It returns the frequency actually
// programmed.
func (n *Node) SetFrequencyPin(f units.Frequency) (units.Frequency, error) {
	var ratio uint64
	programmed := units.Frequency(0)
	if f > 0 {
		q := n.sockets[0].Model.QuantizeToPState(f)
		ratio = uint64(q.Hz() / 1e8) // 100 MHz bus-ratio units
		programmed = q
	}
	for _, s := range n.sockets {
		reg := msr.InsertBits(0, 15, 8, ratio)
		if err := s.Dev.Write(msr.IA32PerfCtl, reg); err != nil {
			return 0, fmt.Errorf("node %s: %w", n.ID, err)
		}
	}
	n.sink.FreqPin(n.ID, programmed.Hz())
	return programmed, nil
}

// frequencyPin reads the current P-state request (0 = no pin).
func (n *Node) frequencyPin() units.Frequency {
	ratio := msr.ExtractBits(n.sockets[0].Dev.PrivilegedRead(msr.IA32PerfCtl), 15, 8)
	return units.Frequency(float64(ratio) * 1e8)
}

// FrequencyPin returns the programmed P-state ceiling (0 = none).
func (n *Node) FrequencyPin() (units.Frequency, error) {
	reg, err := n.sockets[0].Dev.Read(msr.IA32PerfCtl)
	if err != nil {
		return 0, fmt.Errorf("node %s: %w", n.ID, err)
	}
	return units.Frequency(float64(msr.ExtractBits(reg, 15, 8)) * 1e8), nil
}

// SocketsPerNode matches the dual-socket Quartz nodes.
const SocketsPerNode = 2

// New builds a node with two sockets sharing the same variation multiplier
// eta (part binning is per-node at Quartz granularity). The MSR devices are
// programmed with the power-on defaults: PL1 = TDP, enabled and clamped.
func New(id string, spec cpumodel.Spec, eta float64) (*Node, error) {
	n := &Node{ID: id}
	for i := 0; i < SocketsPerNode; i++ {
		dev := msr.NewDevice(nil)
		rapl.ProgramDefaults(dev, spec.TDP, spec.MinPowerLimit, spec.TDP*1.5)
		dom, err := rapl.NewDomain(dev)
		if err != nil {
			return nil, fmt.Errorf("node %s socket %d: %w", id, i, err)
		}
		n.sockets = append(n.sockets, &SocketUnit{
			Model: cpumodel.NewSocket(spec, eta),
			Dev:   dev,
			Rapl:  dom,
		})
	}
	return n, nil
}

// Clone returns a deep copy of the node: each socket's analytic model
// (with its variation multiplier), MSR register file (including injected
// faults), and RAPL domain accounting are duplicated, so the clone and the
// original evolve fully independently — the primitive behind cell-isolated
// evaluation pools. The memoized operating point carries over (it is
// derived purely from register contents, which are copied verbatim). The
// observability sink does not carry over; attach one with SetObs.
func (n *Node) Clone() *Node {
	c := &Node{ID: n.ID, IdleWait: n.IdleWait, degrade: n.degrade, op: n.op, opValid: n.opValid}
	c.sockets = make([]*SocketUnit, 0, len(n.sockets))
	for _, su := range n.sockets {
		dev := su.Dev.Clone()
		c.sockets = append(c.sockets, &SocketUnit{
			Model: su.Model.Clone(),
			Dev:   dev,
			Rapl:  su.Rapl.Clone(dev),
		})
	}
	// Cap tables are immutable and derived purely from the (copied) model,
	// so the clone shares the table pointers in a map of its own — each
	// node grows its map independently, never mutating a shared table.
	if len(n.capTables) > 0 {
		c.capTables = make(map[capKey]*cpumodel.CapTable, len(n.capTables))
		for k, t := range n.capTables {
			c.capTables[k] = t
		}
	}
	c.spinTable = n.spinTable
	return c
}

// RestoreFrom resets the node in place to the state of src, which must be a
// same-ID original this node was cloned from (directly or transitively):
// register files, RAPL accounting, fault arming, degradation, and the
// memoized operating point all revert; the observability sink detaches. It
// is the recycling counterpart of Clone — reusing the allocated sockets,
// register maps, and cap tables keeps a campaign's clone+GC churn flat no
// matter how many scenarios run.
func (n *Node) RestoreFrom(src *Node) error {
	if err := n.RestoreAuxFrom(src); err != nil {
		return err
	}
	for i, su := range n.sockets {
		su.Dev.RestoreFrom(src.sockets[i].Dev)
	}
	return nil
}

// RestoreAuxFrom is RestoreFrom minus the dense register words: it reverts
// the node scalars, socket models, RAPL accounting, and the register files'
// auxiliary state (armed faults, privileged spill), but leaves the
// allowlisted register contents untouched. cluster.PoolState pairs it with
// one flat copy of the pristine word arena to restore a whole pool without
// walking registers device by device.
func (n *Node) RestoreAuxFrom(src *Node) error {
	if n.ID != src.ID || len(n.sockets) != len(src.sockets) {
		return fmt.Errorf("node: cannot restore %s from %s", n.ID, src.ID)
	}
	n.IdleWait = src.IdleWait
	n.degrade = src.degrade
	n.op = src.op
	n.opValid = src.opValid
	n.sink = nil
	for i, su := range n.sockets {
		ss := src.sockets[i]
		su.Model = ss.Model.Clone()
		su.Dev.RestoreAuxFrom(ss.Dev)
		su.Rapl.RestoreFrom(ss.Rapl)
	}
	return nil
}

// WordCount returns the number of dense register words across the node's
// sockets — the arena space CloneInto needs.
func (n *Node) WordCount() int {
	total := 0
	for _, su := range n.sockets {
		total += su.Dev.WordCount()
	}
	return total
}

// CloneInto is Clone with the registers' dense storage carved out of
// backing, which must be exactly WordCount() long. The clone behaves
// identically to a Clone() result; the only difference is where its words
// live, which lets cluster.PoolState lay a whole pool out contiguously.
func (n *Node) CloneInto(backing []uint64) (*Node, error) {
	if len(backing) != n.WordCount() {
		return nil, fmt.Errorf("node %s: backing has %d words, need %d", n.ID, len(backing), n.WordCount())
	}
	c := &Node{ID: n.ID, IdleWait: n.IdleWait, degrade: n.degrade, op: n.op, opValid: n.opValid}
	c.sockets = make([]*SocketUnit, 0, len(n.sockets))
	off := 0
	for _, su := range n.sockets {
		w := su.Dev.WordCount()
		dev, err := su.Dev.CloneOnto(backing[off : off+w : off+w])
		if err != nil {
			return nil, fmt.Errorf("node %s: %w", n.ID, err)
		}
		off += w
		c.sockets = append(c.sockets, &SocketUnit{
			Model: su.Model.Clone(),
			Dev:   dev,
			Rapl:  su.Rapl.Clone(dev),
		})
	}
	if len(n.capTables) > 0 {
		c.capTables = make(map[capKey]*cpumodel.CapTable, len(n.capTables))
		for k, t := range n.capTables {
			c.capTables[k] = t
		}
	}
	c.spinTable = n.spinTable
	return c, nil
}

// SnapshotWords appends the node's dense register words (socket order) to
// dst and returns the extended slice.
func (n *Node) SnapshotWords(dst []uint64) []uint64 {
	for _, su := range n.sockets {
		dst = su.Dev.SnapshotWords(dst)
	}
	return dst
}

// Sockets returns the node's socket units.
func (n *Node) Sockets() []*SocketUnit { return n.sockets }

// Spec returns the socket spec (identical across sockets).
func (n *Node) Spec() cpumodel.Spec { return n.sockets[0].Model.Spec }

// Eta returns the node's variation multiplier.
func (n *Node) Eta() float64 { return n.sockets[0].Model.Eta }

// TDP returns the node-level thermal design power (all sockets).
func (n *Node) TDP() units.Power {
	return n.Spec().TDP * SocketsPerNode
}

// MinLimit returns the node-level minimum settable power limit.
func (n *Node) MinLimit() units.Power {
	return n.Spec().MinPowerLimit * SocketsPerNode
}

// SetPowerLimit programs the node-level limit, split evenly across sockets,
// clamped to the settable range. It returns the limit actually programmed
// (after clamping and RAPL quantization).
func (n *Node) SetPowerLimit(total units.Power) (units.Power, error) {
	return n.SetPowerLimitCached(total, nil)
}

// SetPowerLimitCached is SetPowerLimit with the PL1 field encodings served
// from enc (see rapl.LimitEncoder); nil enc encodes directly. The register
// traffic is identical either way.
func (n *Node) SetPowerLimitCached(total units.Power, enc *rapl.LimitEncoder) (units.Power, error) {
	perSocket := units.Clamp(total/SocketsPerNode, n.Spec().MinPowerLimit, n.Spec().TDP)
	for _, s := range n.sockets {
		err := s.Rapl.SetLimitCached(rapl.Limit{
			Power:      perSocket,
			TimeWindow: time.Second,
			Enabled:    true,
			Clamped:    true,
		}, enc)
		if err != nil {
			return 0, fmt.Errorf("node %s: %w", n.ID, err)
		}
	}
	programmed, err := n.PowerLimit()
	if err != nil {
		return 0, err
	}
	n.sink.LimitWrite(n.ID, programmed.Watts())
	return programmed, nil
}

// PowerLimit reads back the node-level limit (sum of socket PL1s).
func (n *Node) PowerLimit() (units.Power, error) {
	var total units.Power
	for _, s := range n.sockets {
		l, err := s.Rapl.ReadLimit()
		if err != nil {
			return 0, fmt.Errorf("node %s: %w", n.ID, err)
		}
		total += l.Power
	}
	return total, nil
}

// Energy reads the node-level accumulated energy through the RAPL domains
// (wraparound-safe).
func (n *Node) Energy() (units.Energy, error) {
	var total units.Energy
	for _, s := range n.sockets {
		e, err := s.Rapl.ReadEnergy()
		if err != nil {
			return 0, fmt.Errorf("node %s: %w", n.ID, err)
		}
		total += e
	}
	return total, nil
}

// DRAMEnergy reads the node-level accumulated DRAM-domain energy through
// the RAPL domains (wraparound-safe).
func (n *Node) DRAMEnergy() (units.Energy, error) {
	var total units.Energy
	for _, s := range n.sockets {
		e, err := s.Rapl.ReadDRAMEnergy()
		if err != nil {
			return 0, fmt.Errorf("node %s: %w", n.ID, err)
		}
		total += e
	}
	return total, nil
}

// WorkTime returns how long the node needs for the phase's per-core work at
// its current power limit. Both sockets run identical rank work, so the
// node time equals the socket time.
func (n *Node) WorkTime(ph cpumodel.Phase) (time.Duration, error) {
	limit, err := n.sockets[0].Rapl.ReadLimit()
	if err != nil {
		return 0, err
	}
	return time.Duration(float64(n.resolve(ph, limit.Power).tWork) * n.Degradation()), nil
}

// PhaseResult reports one node's share of one bulk-synchronous iteration.
type PhaseResult struct {
	// WorkTime is the time the node computed before reaching the barrier.
	WorkTime time.Duration
	// Energy is the node's CPU (package) energy over the full iteration
	// (work + spin).
	Energy units.Energy
	// DRAMEnergy is the node's DRAM-domain energy over the iteration —
	// measured telemetry, outside the paper's CPU-power control scope.
	DRAMEnergy units.Energy
	// MeanPower is Energy over the iteration time.
	MeanPower units.Power
	// AchievedFreq is the time-weighted achieved frequency, as
	// APERF/MPERF would report it.
	AchievedFreq units.Frequency
	// Flops is the floating-point work completed (all ranks).
	Flops units.Flops
}

// CompleteIteration executes one iteration of the phase: the node computes
// for its work time, then spins at the barrier until iterTime has elapsed.
// Counters (energy, APERF, MPERF, TSC) advance accordingly. iterTime must
// be at least the node's own work time; the critical host passes its own
// work time. workScale multiplies the work time (1 = nominal); the BSP
// engine uses it to inject per-iteration OS noise, which is what produces
// the nonzero confidence intervals of Figure 8. Non-positive workScale is
// treated as 1.
func (n *Node) CompleteIteration(ph cpumodel.Phase, iterTime time.Duration, workScale float64) (PhaseResult, error) {
	limit, err := n.sockets[0].Rapl.ReadLimit()
	if err != nil {
		return PhaseResult{}, err
	}
	op := n.resolve(ph, limit.Power)
	if workScale <= 0 {
		workScale = 1
	}

	fWork := op.fWork
	tWork := time.Duration(float64(op.tWork) * workScale * n.Degradation())
	if tWork > iterTime {
		// The barrier cannot release before the slowest host; treat this
		// host as critical.
		iterTime = tWork
	}
	pWork := op.pWork

	fSpin := op.fSpin
	pSpin := op.pSpin
	tSpin := iterTime - tWork

	var res PhaseResult
	res.WorkTime = tWork
	perSocket := units.EnergyOver(pWork, tWork) + units.EnergyOver(pSpin, tSpin)
	res.Energy = perSocket * SocketsPerNode
	m := n.sockets[0].Model
	dramPerSocket := units.EnergyOver(m.DRAMPowerAt(op.uMem), tWork) +
		units.EnergyOver(m.DRAMPowerAt(0), tSpin)
	res.DRAMEnergy = dramPerSocket * SocketsPerNode
	res.MeanPower = units.MeanPower(res.Energy, iterTime)
	if iterTime > 0 {
		f := (fWork.Hz()*tWork.Seconds() + fSpin.Hz()*tSpin.Seconds()) / iterTime.Seconds()
		res.AchievedFreq = units.Frequency(f)
	}
	res.Flops = ph.Work.Flops * units.Flops(n.Spec().ActiveCores*SocketsPerNode)

	// Advance the hardware counters so telemetry readers see this
	// iteration: energy into the wrapping accumulator, APERF at the
	// achieved frequency, MPERF and TSC at the base clock. One batched
	// device call per socket keeps the credit to a single lock round-trip.
	base := uint64(n.Spec().BaseFreq.Hz() * iterTime.Seconds())
	aperf := uint64(res.AchievedFreq.Hz() * iterTime.Seconds())
	for _, s := range n.sockets {
		adds := [5]msr.CounterAdd{
			{Reg: msr.MSRPkgEnergyStatus, Delta: s.Rapl.EncodeEnergyDelta(perSocket), Width: 32},
			{Reg: msr.MSRDramEnergyStatus, Delta: s.Rapl.EncodeEnergyDelta(dramPerSocket), Width: 32},
			{Reg: msr.IA32APerf, Delta: aperf, Width: 64},
			{Reg: msr.IA32MPerf, Delta: base, Width: 64},
			{Reg: msr.IA32TimeStampCounter, Delta: base, Width: 64},
		}
		s.Dev.PrivilegedAddBatch(adds[:])
	}
	return res, nil
}

// CreditIterations advances the hardware counters as if the node repeated
// the given iteration result count more times — the fast-forward path long
// facility simulations use to skip over steady-state iterations without
// recomputing them. The operating point is unchanged, so scaling energy
// and clock counts linearly is exact.
func (n *Node) CreditIterations(pr PhaseResult, iterTime time.Duration, count int) {
	if count <= 0 || iterTime <= 0 {
		return
	}
	perSocket := pr.Energy / SocketsPerNode * units.Energy(count)
	dramPerSocket := pr.DRAMEnergy / SocketsPerNode * units.Energy(count)
	seconds := iterTime.Seconds() * float64(count)
	base := uint64(n.Spec().BaseFreq.Hz() * seconds)
	aperf := uint64(pr.AchievedFreq.Hz() * seconds)
	for _, s := range n.sockets {
		adds := [5]msr.CounterAdd{
			{Reg: msr.MSRPkgEnergyStatus, Delta: s.Rapl.EncodeEnergyDelta(perSocket), Width: 32},
			{Reg: msr.MSRDramEnergyStatus, Delta: s.Rapl.EncodeEnergyDelta(dramPerSocket), Width: 32},
			{Reg: msr.IA32APerf, Delta: aperf, Width: 64},
			{Reg: msr.IA32MPerf, Delta: base, Width: 64},
			{Reg: msr.IA32TimeStampCounter, Delta: base, Width: 64},
		}
		s.Dev.PrivilegedAddBatch(adds[:])
	}
}

// AchievedFrequency returns the achieved frequency implied by the APERF and
// MPERF deltas since the given previous counter snapshot, plus the new
// snapshot. This is how Figure 6's per-node frequencies are measured.
func (n *Node) AchievedFrequency(prevAperf, prevMperf uint64) (units.Frequency, uint64, uint64) {
	s := n.sockets[0]
	aperf := s.Dev.PrivilegedRead(msr.IA32APerf)
	mperf := s.Dev.PrivilegedRead(msr.IA32MPerf)
	da := aperf - prevAperf
	dm := mperf - prevMperf
	if dm == 0 {
		return 0, aperf, mperf
	}
	ratio := float64(da) / float64(dm)
	return units.Frequency(ratio * n.Spec().BaseFreq.Hz()), aperf, mperf
}
