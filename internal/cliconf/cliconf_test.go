package cliconf

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"powerstack/internal/facility"
	"powerstack/internal/obs"
	"powerstack/internal/units"
)

func TestParseBudgetSteps(t *testing.T) {
	steps, err := ParseBudgetSteps("2h=8 kW, 3h=12 kW")
	if err != nil {
		t.Fatal(err)
	}
	want := []facility.BudgetStep{
		{At: 2 * time.Hour, Budget: 8000},
		{At: 3 * time.Hour, Budget: 12000},
	}
	if !reflect.DeepEqual(steps, want) {
		t.Errorf("steps = %+v, want %+v", steps, want)
	}
	if steps, err := ParseBudgetSteps(""); err != nil || steps != nil {
		t.Errorf("empty timeline = %v, %v", steps, err)
	}
	for _, bad := range []string{"2h", "x=8 kW", "2h=8 furlongs"} {
		if _, err := ParseBudgetSteps(bad); err == nil {
			t.Errorf("ParseBudgetSteps(%q) accepted", bad)
		}
	}
}

func TestBudgetGroup(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	b := RegisterBudget(fs, 500)
	if err := fs.Parse([]string{"-budget", "6 kW", "-emergency", "throttle"}); err != nil {
		t.Fatal(err)
	}
	p, err := b.Power(123)
	if err != nil || p != 6000 {
		t.Errorf("Power = %v, %v", p, err)
	}
	if b.Emergency != "throttle" || b.Checkpoint != 500 {
		t.Errorf("group = %+v", b)
	}

	fs2 := flag.NewFlagSet("t2", flag.ContinueOnError)
	b2 := RegisterBudget(fs2, 0)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if p, err := b2.Power(units.Power(777)); err != nil || p != 777 {
		t.Errorf("fallback Power = %v, %v", p, err)
	}
}

func TestFaultsGroup(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterFaults(fs)
	if err := fs.Parse([]string{"-crashes", "2", "-dropouts", "1", "-faultseed", "9"}); err != nil {
		t.Fatal(err)
	}
	if !f.Any() {
		t.Fatal("Any() = false with injections requested")
	}
	ids := []string{"n1", "n2", "n3", "n4"}
	p1 := f.Plan(ids, time.Hour)
	p2 := f.Plan(ids, time.Hour)
	if p1 == nil || len(p1.Injections) == 0 {
		t.Fatal("plan empty")
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Error("same seed produced different plans")
	}

	empty := RegisterFaults(flag.NewFlagSet("e", flag.ContinueOnError))
	if empty.Any() || empty.Plan(ids, time.Hour) != nil {
		t.Error("empty group generated a plan")
	}
}

func TestArtifactsDump(t *testing.T) {
	dir := t.TempDir()
	a := &Artifacts{
		Metrics: filepath.Join(dir, "m.txt"),
		Events:  filepath.Join(dir, "e.json"),
	}
	if !a.Enabled() {
		t.Fatal("Enabled() = false with paths set")
	}
	sink := obs.New()
	sink.PowerSample("pkg", 100)
	if err := a.Dump(sink); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{a.Metrics, a.Events} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("artifact %s missing or empty (%v)", p, err)
		}
	}
	if (&Artifacts{}).Enabled() {
		t.Error("empty group Enabled() = true")
	}
	if err := (&Artifacts{}).Dump(sink); err != nil {
		t.Errorf("empty dump errored: %v", err)
	}
}

func TestDumpDir(t *testing.T) {
	dir := t.TempDir()
	sink := obs.New()
	sink.PowerSample("pkg", 50)
	if err := DumpDir(sink, dir); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "metrics.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "power") {
		t.Errorf("metrics.txt lacks power series:\n%s", b)
	}
	if _, err := os.Stat(filepath.Join(dir, "trace.json")); err != nil {
		t.Error(err)
	}
}
