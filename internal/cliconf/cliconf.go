// Package cliconf is the shared command-line surface of the powerstack
// binaries. The facility, campaign, experiments, powerstackd, and
// powerload commands all speak the same dialects — a budget timeline
// ("2h=8 kW,3h=12 kW"), a generated fault plan (-crashes/-msrfaults/...),
// observability artifact dumps (-metrics/-trace/-spans/-events) — and
// this package owns each group once: registration on a FlagSet, parsing,
// and the shared semantics, instead of each main.go growing its own
// drifting copy.
package cliconf

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"powerstack/internal/facility"
	"powerstack/internal/fault"
	"powerstack/internal/obs"
	"powerstack/internal/units"
)

// --- budget group: -budget, -budgetsteps, -emergency, -checkpoint ---

// Budget is the facility budget flag group.
type Budget struct {
	budget string
	steps  string
	// Emergency is the raw -emergency value ("", "preempt", "throttle",
	// "kill"); facility.Config validation rejects anything else.
	Emergency string
	// Checkpoint is the job checkpoint cadence in iterations.
	Checkpoint int
}

// RegisterBudget registers the budget flag group on fs.
func RegisterBudget(fs *flag.FlagSet, defaultCheckpoint int) *Budget {
	b := &Budget{}
	fs.StringVar(&b.budget, "budget", "", "system power budget (e.g. \"12 kW\"; default 200 W/node)")
	fs.StringVar(&b.steps, "budgetsteps", "", "scheduled budget timeline: comma-separated offset=power pairs (e.g. \"2h=8 kW,3h=12 kW\")")
	fs.StringVar(&b.Emergency, "emergency", "", "budget-emergency response: preempt (default), throttle, or kill")
	fs.IntVar(&b.Checkpoint, "checkpoint", defaultCheckpoint, "job checkpoint cadence in iterations (0 disables)")
	return b
}

// Power resolves -budget, falling back when the flag was not given.
func (b *Budget) Power(fallback units.Power) (units.Power, error) {
	if b.budget == "" {
		return fallback, nil
	}
	return units.ParsePower(b.budget)
}

// Steps parses the -budgetsteps timeline.
func (b *Budget) Steps() ([]facility.BudgetStep, error) {
	return ParseBudgetSteps(b.steps)
}

// ParseBudgetSteps parses a comma-separated "offset=power" timeline, e.g.
// "2h=8 kW,3h=12 kW": at 2h the budget steps to 8 kW, at 3h back to
// 12 kW. Empty input is an empty timeline.
func ParseBudgetSteps(s string) ([]facility.BudgetStep, error) {
	if s == "" {
		return nil, nil
	}
	var out []facility.BudgetStep
	for _, part := range strings.Split(s, ",") {
		at, power, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("budget step %q: want offset=power", part)
		}
		d, err := time.ParseDuration(strings.TrimSpace(at))
		if err != nil {
			return nil, fmt.Errorf("budget step %q: %w", part, err)
		}
		p, err := units.ParsePower(strings.TrimSpace(power))
		if err != nil {
			return nil, fmt.Errorf("budget step %q: %w", part, err)
		}
		out = append(out, facility.BudgetStep{At: d, Budget: p})
	}
	return out, nil
}

// --- fault group: -crashes, -msrfaults, -dropouts, -slownodes,
//     -budgetdrops, -faultseed ---

// Faults is the generated-fault-plan flag group.
type Faults struct {
	Crashes     int
	MSRFaults   int
	Dropouts    int
	SlowNodes   int
	BudgetDrops int
	Seed        uint64
}

// RegisterFaults registers the fault flag group on fs.
func RegisterFaults(fs *flag.FlagSet) *Faults {
	f := &Faults{}
	fs.IntVar(&f.Crashes, "crashes", 0, "nodes to crash mid-run (half are repaired)")
	fs.IntVar(&f.MSRFaults, "msrfaults", 0, "nodes with injected MSR write faults")
	fs.IntVar(&f.Dropouts, "dropouts", 0, "nodes with injected telemetry dropouts")
	fs.IntVar(&f.SlowNodes, "slownodes", 0, "nodes degraded mid-run")
	fs.IntVar(&f.BudgetDrops, "budgetdrops", 0, "randomized demand-response budget drops in the fault plan")
	fs.Uint64Var(&f.Seed, "faultseed", 7, "seed of the generated fault plan")
	return f
}

// Any reports whether the group requests any injections.
func (f *Faults) Any() bool {
	return f.Crashes+f.MSRFaults+f.Dropouts+f.SlowNodes+f.BudgetDrops > 0
}

// Plan generates the deterministic fault plan over the given nodes, nil
// when the group is empty. Crashed nodes heal at the generator's default
// half fraction.
func (f *Faults) Plan(nodeIDs []string, horizon time.Duration) *fault.Plan {
	if !f.Any() {
		return nil
	}
	return fault.Generate(nodeIDs, fault.GenOptions{
		Seed:           f.Seed,
		Crashes:        f.Crashes,
		RepairFraction: 0.5,
		MSRWriteFaults: f.MSRFaults,
		SlowNodes:      f.SlowNodes,
		Dropouts:       f.Dropouts,
		BudgetDrops:    f.BudgetDrops,
		Horizon:        horizon,
	})
}

// String summarizes the group for startup logs.
func (f *Faults) String() string {
	return fmt.Sprintf("%d crashes, %d MSR write faults, %d telemetry dropouts, %d slow nodes, %d budget drops (seed %d)",
		f.Crashes, f.MSRFaults, f.Dropouts, f.SlowNodes, f.BudgetDrops, f.Seed)
}

// --- profile group: -cpuprofile, -memprofile ---

// Profiles is the pprof flag group: a CPU profile covering everything
// between Start and Stop, and a heap profile written at Stop.
type Profiles struct {
	CPU string
	Mem string

	cpuFile *os.File
}

// RegisterProfiles registers the profile flag group on fs.
func RegisterProfiles(fs *flag.FlagSet) *Profiles {
	p := &Profiles{}
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile of the run here")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile at exit here")
	return p
}

// Start begins CPU profiling when -cpuprofile was given. Callers must pair
// it with Stop (usually deferred).
func (p *Profiles) Start() error {
	if p.CPU == "" {
		return nil
	}
	f, err := os.Create(p.CPU)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close() //nolint:errcheck // profile error takes precedence
		return err
	}
	p.cpuFile = f
	return nil
}

// Stop ends the CPU profile and writes the heap profile, when requested.
func (p *Profiles) Stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return err
		}
		p.cpuFile = nil
		log.Printf("wrote CPU profile to %s", p.CPU)
	}
	if p.Mem == "" {
		return nil
	}
	f, err := os.Create(p.Mem)
	if err != nil {
		return err
	}
	runtime.GC() // settle the heap so the profile shows live objects
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close() //nolint:errcheck // profile error takes precedence
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("wrote heap profile to %s", p.Mem)
	return nil
}

// --- obs artifact group: -metrics, -trace, -spans, -events ---

// Artifacts is the observability artifact flag group. Each path dumps one
// artifact after the run; "-" selects stdout, "" skips.
type Artifacts struct {
	Metrics string
	Trace   string
	Spans   string
	Events  string
}

// RegisterArtifacts registers the artifact flag group on fs.
func RegisterArtifacts(fs *flag.FlagSet) *Artifacts {
	a := &Artifacts{}
	fs.StringVar(&a.Metrics, "metrics", "", "write a Prometheus metrics snapshot here (- = stdout)")
	fs.StringVar(&a.Trace, "trace", "", "write a virtual-time Chrome trace JSON here (- = stdout)")
	fs.StringVar(&a.Spans, "spans", "", "write the span log JSONL here (- = stdout)")
	fs.StringVar(&a.Events, "events", "", "write the decision-event journal JSON here (- = stdout)")
	return a
}

// Enabled reports whether any artifact was requested — the usual gate for
// enabling observability before a run.
func (a *Artifacts) Enabled() bool {
	return a.Metrics != "" || a.Trace != "" || a.Spans != "" || a.Events != ""
}

// Dump writes every requested artifact from sink.
func (a *Artifacts) Dump(sink *obs.Sink) error {
	if err := writeArtifact(a.Metrics, "metrics snapshot", sink.WritePrometheus); err != nil {
		return err
	}
	if err := writeArtifact(a.Trace, "Chrome trace", sink.WriteTrace); err != nil {
		return err
	}
	if err := writeArtifact(a.Spans, "span log", sink.WriteSpans); err != nil {
		return err
	}
	return writeArtifact(a.Events, "event journal", sink.Journal.WriteJSON)
}

// DumpDir writes the directory-shaped artifact set (metrics.txt and
// trace.json, the cmd/experiments -obsdir convention) into dir.
func DumpDir(sink *obs.Sink, dir string) error {
	if err := writeArtifact(filepath.Join(dir, "metrics.txt"), "metrics snapshot", sink.WritePrometheus); err != nil {
		return err
	}
	return writeArtifact(filepath.Join(dir, "trace.json"), "Chrome trace", sink.WriteTrace)
}

// writeArtifact writes one artifact, treating "-" as stdout and "" as
// skip.
func writeArtifact(path, what string, write func(io.Writer) error) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		fmt.Printf("--- %s ---\n", what)
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close() //nolint:errcheck // write error takes precedence
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("wrote %s to %s", what, path)
	return nil
}
