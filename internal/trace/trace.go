// Package trace synthesizes facility-level power telemetry in the shape of
// Figure 1: a year of instantaneous total power draw for a Quartz-class
// system rated at 1.35 MW whose average draw hovers near 0.83 MW — the
// under-utilization of procured power that motivates hardware
// over-provisioning. The generator composes a seasonal baseline, weekly and
// diurnal utilization cycles, job-mix noise, and occasional maintenance
// windows, then reports the one-day moving average the figure overlays.
package trace

import (
	"errors"
	"math"
	"math/rand/v2"
	"time"

	"powerstack/internal/stats"
	"powerstack/internal/units"
)

// Config shapes the synthetic facility trace.
type Config struct {
	// RatedPower is the facility's peak power rating (the dashed line).
	RatedPower units.Power
	// MeanPower is the long-run average draw the trace should hover at.
	MeanPower units.Power
	// Start is the timestamp of the first sample.
	Start time.Time
	// SampleInterval is the telemetry cadence.
	SampleInterval time.Duration
	// Duration is the span of the trace.
	Duration time.Duration
	// Seed drives the stochastic components.
	Seed uint64
}

// QuartzYear returns the Figure 1 configuration: one year of hourly samples
// for the 1.35 MW Quartz system averaging 0.83 MW.
func QuartzYear() Config {
	return Config{
		RatedPower:     1.35 * units.Megawatt,
		MeanPower:      0.83 * units.Megawatt,
		Start:          time.Date(2017, time.November, 1, 0, 0, 0, 0, time.UTC),
		SampleInterval: time.Hour,
		Duration:       10 * 30 * 24 * time.Hour, // Nov '17 - Aug '18
		Seed:           1,
	}
}

// Sample is one telemetry point.
type Sample struct {
	Time  time.Time
	Power units.Power
}

// Trace is a generated facility power series.
type Trace struct {
	Config  Config
	Samples []Sample
	// DailyAverage is the trailing one-day moving average (black line).
	DailyAverage []units.Power
}

// Generate synthesizes the trace.
func Generate(cfg Config) (*Trace, error) {
	if cfg.RatedPower <= 0 || cfg.MeanPower <= 0 {
		return nil, errors.New("trace: powers must be positive")
	}
	if cfg.MeanPower >= cfg.RatedPower {
		return nil, errors.New("trace: mean draw must sit below the rating")
	}
	if cfg.SampleInterval <= 0 || cfg.Duration < cfg.SampleInterval {
		return nil, errors.New("trace: invalid sampling window")
	}
	n := int(cfg.Duration / cfg.SampleInterval)
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x5DEECE66D))

	tr := &Trace{Config: cfg, Samples: make([]Sample, n)}
	mean := cfg.MeanPower.Watts()
	rated := cfg.RatedPower.Watts()

	// A slow AR(1) job-mix component makes multi-day excursions.
	ar := 0.0
	for i := 0; i < n; i++ {
		ts := cfg.Start.Add(time.Duration(i) * cfg.SampleInterval)
		hours := float64(i) * cfg.SampleInterval.Hours()
		day := hours / 24

		// Seasonal drift (+-4%), weekly cycle (weekends quieter), and a
		// diurnal cycle (nights slightly quieter).
		seasonal := 0.04 * math.Sin(2*math.Pi*day/365+1.1)
		weekly := -0.05 * math.Exp(-squared(math.Mod(day+3, 7)-5.5)/0.9)
		diurnal := 0.02 * math.Sin(2*math.Pi*math.Mod(hours, 24)/24-2.0)

		ar = 0.995*ar + 0.012*rng.NormFloat64()
		jitter := 0.02 * rng.NormFloat64()

		p := mean * (1 + seasonal + weekly + diurnal + ar + jitter)

		// Occasional maintenance windows (~1 per 2 months) drop the
		// draw sharply for several hours.
		if rng.Float64() < 1.0/(60*24)*cfg.SampleInterval.Hours() {
			p *= 0.45
		}
		if p > rated {
			p = rated
		}
		if p < 0.2*mean {
			p = 0.2 * mean
		}
		tr.Samples[i] = Sample{Time: ts, Power: units.Power(p)}
	}

	window := int(24 * time.Hour / cfg.SampleInterval)
	if window < 1 {
		window = 1
	}
	raw := make([]float64, n)
	for i, s := range tr.Samples {
		raw[i] = s.Power.Watts()
	}
	ma := stats.MovingAverage(raw, window)
	tr.DailyAverage = make([]units.Power, n)
	for i, v := range ma {
		tr.DailyAverage[i] = units.Power(v)
	}
	return tr, nil
}

// MeanPower returns the average of the trace.
func (t *Trace) MeanPower() units.Power {
	if len(t.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range t.Samples {
		sum += s.Power.Watts()
	}
	return units.Power(sum / float64(len(t.Samples)))
}

// PeakPower returns the maximum instantaneous draw.
func (t *Trace) PeakPower() units.Power {
	var mx units.Power
	for _, s := range t.Samples {
		if s.Power > mx {
			mx = s.Power
		}
	}
	return mx
}

// StrandedPower returns the average gap between the rating and the draw —
// the provisioned-but-unused capacity motivating over-provisioning.
func (t *Trace) StrandedPower() units.Power {
	return t.Config.RatedPower - t.MeanPower()
}

// MonthlyAverages buckets the trace by calendar month, returning labels
// ("Nov '17") and average draw per month, as the Figure 1 x-axis ticks.
func (t *Trace) MonthlyAverages() (labels []string, means []units.Power) {
	type bucket struct {
		sum float64
		n   int
	}
	var keys []string
	buckets := map[string]*bucket{}
	for _, s := range t.Samples {
		k := s.Time.Format("Jan '06")
		b, ok := buckets[k]
		if !ok {
			b = &bucket{}
			buckets[k] = b
			keys = append(keys, k)
		}
		b.sum += s.Power.Watts()
		b.n++
	}
	for _, k := range keys {
		b := buckets[k]
		labels = append(labels, k)
		means = append(means, units.Power(b.sum/float64(b.n)))
	}
	return labels, means
}

func squared(x float64) float64 { return x * x }
