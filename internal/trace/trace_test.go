package trace

import (
	"math"
	"testing"
	"time"

	"powerstack/internal/units"
)

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{RatedPower: 0, MeanPower: 1, SampleInterval: time.Hour, Duration: time.Hour},
		{RatedPower: 1, MeanPower: 0, SampleInterval: time.Hour, Duration: time.Hour},
		{RatedPower: 1, MeanPower: 2, SampleInterval: time.Hour, Duration: time.Hour},
		{RatedPower: 2, MeanPower: 1, SampleInterval: 0, Duration: time.Hour},
		{RatedPower: 2, MeanPower: 1, SampleInterval: time.Hour, Duration: time.Minute},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestQuartzYearShape(t *testing.T) {
	tr, err := Generate(QuartzYear())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 7200 { // 300 days hourly
		t.Fatalf("samples = %d", len(tr.Samples))
	}
	// Figure 1: mean ~0.83 MW, peak below the 1.35 MW rating.
	mean := tr.MeanPower().Megawatts()
	if math.Abs(mean-0.83) > 0.05 {
		t.Errorf("mean = %v MW, want ~0.83", mean)
	}
	if peak := tr.PeakPower(); peak > tr.Config.RatedPower {
		t.Errorf("peak %v exceeds rating", peak)
	}
	if stranded := tr.StrandedPower().Megawatts(); stranded < 0.3 {
		t.Errorf("stranded power = %v MW, want the motivating ~0.5 MW gap", stranded)
	}
	for i, s := range tr.Samples {
		if s.Power <= 0 {
			t.Fatalf("sample %d non-positive", i)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	cfg := QuartzYear()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i].Power != b.Samples[i].Power {
			t.Fatal("same seed produced different traces")
		}
	}
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Samples {
		if a.Samples[i].Power != c.Samples[i].Power {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestDailyAverageSmoothesJitter(t *testing.T) {
	tr, err := Generate(QuartzYear())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.DailyAverage) != len(tr.Samples) {
		t.Fatal("moving average length mismatch")
	}
	variance := func(xs []float64) float64 {
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		v := 0.0
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		return v / float64(len(xs))
	}
	raw := make([]float64, len(tr.Samples))
	ma := make([]float64, len(tr.Samples))
	for i := range tr.Samples {
		raw[i] = tr.Samples[i].Power.Watts()
		ma[i] = tr.DailyAverage[i].Watts()
	}
	if variance(ma) >= variance(raw) {
		t.Error("daily average should be smoother than raw samples")
	}
}

func TestMonthlyAverages(t *testing.T) {
	tr, err := Generate(QuartzYear())
	if err != nil {
		t.Fatal(err)
	}
	labels, means := tr.MonthlyAverages()
	if len(labels) != len(means) || len(labels) < 9 {
		t.Fatalf("months = %d", len(labels))
	}
	if labels[0] != "Nov '17" {
		t.Errorf("first month = %q", labels[0])
	}
	for i, m := range means {
		if m <= 0 || m > tr.Config.RatedPower {
			t.Errorf("month %s mean = %v", labels[i], m)
		}
	}
}

func TestShortTrace(t *testing.T) {
	cfg := Config{
		RatedPower:     1 * units.Megawatt,
		MeanPower:      0.6 * units.Megawatt,
		Start:          time.Unix(0, 0).UTC(),
		SampleInterval: time.Minute,
		Duration:       2 * time.Hour,
		Seed:           9,
	}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 120 {
		t.Errorf("samples = %d", len(tr.Samples))
	}
}
