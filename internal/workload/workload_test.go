package workload

import (
	"math"
	"strings"
	"testing"

	"powerstack/internal/charz"
	"powerstack/internal/kernel"
	"powerstack/internal/units"
)

// syntheticDB builds a characterization database from a simple analytic
// stand-in: power falls with waiting fraction under the balancer, monitor
// power peaks mid-intensity, narrower vectors draw less.
func syntheticDB(t *testing.T) *charz.DB {
	t.Helper()
	db := charz.NewDB()
	for _, cfg := range Catalog() {
		mon := 200.0 + 30*peakedness(cfg.Intensity)
		mon *= 0.9 + 0.1*cfg.Vector.PowerScale()
		needWait := 150.0
		e := charz.Entry{
			Config:              cfg,
			Hosts:               8,
			MonitorHostPower:    units.Power(mon),
			MonitorMaxHostPower: units.Power(mon + 4),
			MonitorCriticalPwr:  units.Power(mon + 1),
			MonitorWaitingPwr:   units.Power(mon - 6),
			NeededCritical:      units.Power(mon - 2),
			NeededWaiting:       units.Power(needWait),
			NeededMin:           units.Power(mon - 2),
		}
		if cfg.WaitingPct > 0 {
			e.NeededMin = units.Power(needWait)
			w := cfg.WaitingFraction()
			e.NeededMean = units.Power((1-w)*float64(e.NeededCritical) + w*needWait)
		} else {
			e.MonitorWaitingPwr = 0
			e.NeededWaiting = 0
			e.NeededMean = e.NeededCritical
		}
		e.NeededMax = e.NeededCritical
		db.Put(e)
	}
	return db
}

// peakedness is 1 at intensity 8, falling toward the extremes.
func peakedness(in float64) float64 {
	if in <= 0 {
		return 0.2
	}
	d := math.Abs(math.Log2(in) - 3)
	return math.Max(0, 1-d/4)
}

func TestCatalogValidAndUnique(t *testing.T) {
	cfgs := Catalog()
	if len(cfgs) < 30 {
		t.Fatalf("catalog too small: %d", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("catalog config %v invalid: %v", c, err)
		}
		if seen[c.Name()] {
			t.Errorf("duplicate catalog entry %s", c.Name())
		}
		seen[c.Name()] = true
	}
}

func TestCatalogSpansAxes(t *testing.T) {
	var hasScalar, hasXMM, hasZeroIntensity, has75, has3x bool
	for _, c := range Catalog() {
		hasScalar = hasScalar || c.Vector == kernel.Scalar
		hasXMM = hasXMM || c.Vector == kernel.XMM
		hasZeroIntensity = hasZeroIntensity || c.Intensity == 0
		has75 = has75 || c.WaitingPct == 75
		has3x = has3x || c.Imbalance == 3
	}
	if !hasScalar || !hasXMM || !hasZeroIntensity || !has75 || !has3x {
		t.Errorf("catalog misses axes: scalar=%v xmm=%v i0=%v w75=%v x3=%v",
			hasScalar, hasXMM, hasZeroIntensity, has75, has3x)
	}
}

func TestFixedMixesDrawFromCatalog(t *testing.T) {
	inCatalog := map[string]bool{}
	for _, c := range Catalog() {
		inCatalog[c.Name()] = true
	}
	for _, m := range []Mix{NeedUsedPower(), HighImbalance(), WastefulPower()} {
		for _, j := range m.Jobs {
			if !inCatalog[j.Config.Name()] {
				t.Errorf("%s uses %s, not in Catalog()", m.Name, j.Config.Name())
			}
		}
	}
}

func TestFixedMixShapes(t *testing.T) {
	for _, m := range []Mix{NeedUsedPower(), WastefulPower()} {
		if len(m.Jobs) != JobsPerMix {
			t.Errorf("%s jobs = %d", m.Name, len(m.Jobs))
		}
		if m.TotalNodes() != TotalNodes {
			t.Errorf("%s nodes = %d", m.Name, m.TotalNodes())
		}
		for _, j := range m.Jobs {
			if err := j.Config.Validate(); err != nil {
				t.Errorf("%s job %s invalid: %v", m.Name, j.ID, err)
			}
		}
	}
}

func TestNeedUsedPowerIsAllBalanced(t *testing.T) {
	for _, j := range NeedUsedPower().Jobs {
		if j.Config.WaitingPct != 0 {
			t.Errorf("NeedUsedPower contains waiting ranks: %s", j.Config)
		}
	}
}

func TestWastefulPowerIsAllImbalanced(t *testing.T) {
	for _, j := range WastefulPower().Jobs {
		if j.Config.WaitingPct < 50 {
			t.Errorf("WastefulPower job %s has only %d%% waiting", j.ID, j.Config.WaitingPct)
		}
	}
}

func TestHighImbalanceSingleJob(t *testing.T) {
	m := HighImbalance()
	if len(m.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(m.Jobs))
	}
	j := m.Jobs[0]
	if j.Nodes != TotalNodes {
		t.Errorf("nodes = %d, want %d", j.Nodes, TotalNodes)
	}
	if j.Config.WaitingPct != 75 || j.Config.Imbalance != 3 {
		t.Errorf("config = %v, want heavy imbalance", j.Config)
	}
}

func TestLowHighPowerRanking(t *testing.T) {
	db := syntheticDB(t)
	low, err := LowPower(db)
	if err != nil {
		t.Fatal(err)
	}
	high, err := HighPower(db)
	if err != nil {
		t.Fatal(err)
	}
	meanPower := func(m Mix) float64 {
		sum := 0.0
		for _, j := range m.Jobs {
			e, _ := db.Get(j.Config)
			sum += e.MonitorHostPower.Watts()
		}
		return sum / float64(len(m.Jobs))
	}
	if meanPower(low) >= meanPower(high) {
		t.Errorf("LowPower mean %v >= HighPower mean %v", meanPower(low), meanPower(high))
	}
	// The two mixes are disjoint.
	lowSet := map[string]bool{}
	for _, j := range low.Jobs {
		lowSet[j.Config.Name()] = true
	}
	for _, j := range high.Jobs {
		if lowSet[j.Config.Name()] {
			t.Errorf("config %s in both LowPower and HighPower", j.Config.Name())
		}
	}
}

func TestRankingErrors(t *testing.T) {
	if _, err := LowPower(nil); err == nil {
		t.Error("nil db accepted")
	}
	if _, err := HighPower(charz.NewDB()); err == nil {
		t.Error("incomplete db accepted")
	}
}

func TestRandomLargeDeterministic(t *testing.T) {
	a := RandomLarge(11)
	b := RandomLarge(11)
	for i := range a.Jobs {
		if a.Jobs[i].Config.Name() != b.Jobs[i].Config.Name() {
			t.Fatal("same seed produced different mixes")
		}
	}
	c := RandomLarge(12)
	same := true
	for i := range a.Jobs {
		if a.Jobs[i].Config.Name() != c.Jobs[i].Config.Name() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical mixes")
	}
	if len(a.Jobs) != JobsPerMix {
		t.Errorf("jobs = %d", len(a.Jobs))
	}
}

func TestMixesAssemblesAllSix(t *testing.T) {
	db := syntheticDB(t)
	mixes, err := Mixes(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(mixes) != 6 {
		t.Fatalf("mixes = %d", len(mixes))
	}
	wantOrder := []string{"NeedUsedPower", "HighImbalance", "WastefulPower", "LowPower", "HighPower", "RandomLarge"}
	for i, m := range mixes {
		if m.Name != wantOrder[i] {
			t.Errorf("mix[%d] = %s, want %s", i, m.Name, wantOrder[i])
		}
		if m.TotalNodes() != TotalNodes {
			t.Errorf("%s nodes = %d", m.Name, m.TotalNodes())
		}
	}
	if _, err := Mixes(nil, 3); err == nil {
		t.Error("nil db accepted")
	}
}

func TestMixConfigsDeduplicates(t *testing.T) {
	m := Mix{Name: "x", Jobs: []JobSpec{
		{ID: "a", Config: kernel.Config{Intensity: 1, Vector: kernel.YMM, Imbalance: 1}, Nodes: 1},
		{ID: "b", Config: kernel.Config{Intensity: 1, Vector: kernel.YMM, Imbalance: 1}, Nodes: 1},
		{ID: "c", Config: kernel.Config{Intensity: 2, Vector: kernel.YMM, Imbalance: 1}, Nodes: 1},
	}}
	if got := len(m.Configs()); got != 2 {
		t.Errorf("distinct configs = %d, want 2", got)
	}
}

func TestSelectBudgetsOrderingMatchesTableIII(t *testing.T) {
	db := syntheticDB(t)
	mixes, err := Mixes(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mixes {
		b, err := SelectBudgets(m, db)
		if err != nil {
			t.Fatal(err)
		}
		// Table III structure: min <= ideal <= max, and max below the
		// 216 kW TDP total.
		if !(b.Min <= b.Ideal && b.Ideal <= b.Max) {
			t.Errorf("%s budgets out of order: %+v", m.Name, b)
		}
		if b.Max.Kilowatts() > 216 {
			t.Errorf("%s max budget %v exceeds TDP total", m.Name, b.Max)
		}
		if b.Min.Kilowatts() < 100 {
			t.Errorf("%s min budget %v implausibly low", m.Name, b.Min)
		}
		levels := b.Levels()
		if len(levels) != 3 || levels[0].Name != "min" || levels[2].Name != "max" {
			t.Errorf("levels = %+v", levels)
		}
	}
}

func TestSelectBudgetsWastefulGapLargest(t *testing.T) {
	// The wasteful mix has the largest max-ideal gap fraction: its
	// uncapped power is far above its needed power.
	db := syntheticDB(t)
	wasteful, _ := SelectBudgets(WastefulPower(), db)
	needUsed, _ := SelectBudgets(NeedUsedPower(), db)
	gap := func(b Budgets) float64 { return (b.Max - b.Ideal).Watts() / b.Max.Watts() }
	if gap(wasteful) <= gap(needUsed) {
		t.Errorf("wasteful gap %v <= needUsed gap %v", gap(wasteful), gap(needUsed))
	}
}

func TestSelectBudgetsErrors(t *testing.T) {
	db := syntheticDB(t)
	if _, err := SelectBudgets(Mix{Name: "empty"}, db); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := SelectBudgets(NeedUsedPower(), nil); err == nil {
		t.Error("nil db accepted")
	}
	if _, err := SelectBudgets(NeedUsedPower(), charz.NewDB()); err == nil {
		t.Error("incomplete db accepted")
	}
}

func TestJobIDsCarryConfigNames(t *testing.T) {
	for _, j := range WastefulPower().Jobs {
		if !strings.Contains(j.ID, j.Config.Name()) {
			t.Errorf("job ID %q does not embed config name %q", j.ID, j.Config.Name())
		}
	}
}
