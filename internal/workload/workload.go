// Package workload defines the evaluation grid of Section V: the catalog
// of synthetic-kernel configurations, the six workload mixes of Table II,
// and the min/ideal/max power-budget selection of Table III.
//
// Table II in the paper lists each mix's member configurations explicitly;
// this reconstruction follows the stated intent of each mix (Section V-B):
// NeedUsedPower pairs low-power balanced jobs with one high-intensity job
// whose used power is all needed; HighImbalance is a single highly
// imbalanced job across all nodes; WastefulPower is dominated by
// waiting-rank spin waste; LowPower and HighPower take the nine lowest- and
// highest-power configurations from the characterization; RandomLarge
// shuffles the catalog.
package workload

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"powerstack/internal/bsp"
	"powerstack/internal/charz"
	"powerstack/internal/kernel"
	"powerstack/internal/units"
)

// Evaluation-scale constants from Section V-B.
const (
	// JobsPerMix is the number of concurrent jobs in each mix.
	JobsPerMix = 9
	// NodesPerJob is the host count of each job (HighImbalance instead
	// runs one job across all TotalNodes).
	NodesPerJob = 100
	// TotalNodes is the mix footprint: 9 jobs x 100 nodes.
	TotalNodes = JobsPerMix * NodesPerJob
)

// JobSpec is one job of a mix.
type JobSpec struct {
	ID     string
	Config kernel.Config
	Nodes  int
}

// Mix is one column of Figures 7 and 8.
type Mix struct {
	Name string
	Jobs []JobSpec
}

// Configs returns the distinct kernel configurations used by the mix.
func (m Mix) Configs() []kernel.Config {
	seen := map[string]bool{}
	var out []kernel.Config
	for _, j := range m.Jobs {
		if !seen[j.Config.Name()] {
			seen[j.Config.Name()] = true
			out = append(out, j.Config)
		}
	}
	return out
}

// TotalNodes returns the mix's node footprint.
func (m Mix) TotalNodes() int {
	total := 0
	for _, j := range m.Jobs {
		total += j.Nodes
	}
	return total
}

// Scaled returns a copy of the mix with each job's node count scaled so the
// mix footprint is approximately totalNodes (at least 2 nodes per job).
// Tests and quick demos use this to shrink the 900-node evaluation.
func (m Mix) Scaled(totalNodes int) Mix {
	old := m.TotalNodes()
	if old == 0 || totalNodes <= 0 {
		return m
	}
	out := Mix{Name: m.Name, Jobs: make([]JobSpec, len(m.Jobs))}
	for i, j := range m.Jobs {
		n := int(float64(j.Nodes)*float64(totalNodes)/float64(old) + 0.5)
		if n < 2 {
			n = 2
		}
		out.Jobs[i] = JobSpec{ID: j.ID, Config: j.Config, Nodes: n}
	}
	return out
}

// Catalog returns every kernel configuration any mix draws from — the
// reconstruction of Table II's workload column. It spans all four design
// axes: intensity 0-32 FLOPs/byte, scalar/xmm/ymm vectors, 0-75% waiting
// ranks, and 2x/3x imbalance.
func Catalog() []kernel.Config {
	var cfgs []kernel.Config
	add := func(v kernel.Vector, intensity float64, waiting int, imbalance float64) {
		cfgs = append(cfgs, kernel.Config{
			Intensity: intensity, Vector: v, WaitingPct: waiting, Imbalance: imbalance,
		})
	}
	// Balanced configurations (no waiting ranks) at all three widths.
	for _, in := range []float64{0, 0.25, 0.5, 1, 2, 4, 8, 16, 32} {
		add(kernel.YMM, in, 0, 1)
	}
	for _, in := range []float64{0, 0.25, 0.5, 1, 8, 32} {
		add(kernel.XMM, in, 0, 1)
		add(kernel.Scalar, in, 0, 1)
	}
	// Imbalanced ymm configurations across the waiting/imbalance grid.
	for _, col := range []kernel.ImbalanceColumn{
		{WaitingPct: 25, Imbalance: 2}, {WaitingPct: 25, Imbalance: 3},
		{WaitingPct: 50, Imbalance: 2}, {WaitingPct: 50, Imbalance: 3},
		{WaitingPct: 75, Imbalance: 2}, {WaitingPct: 75, Imbalance: 3},
	} {
		for _, in := range []float64{0.25, 1, 2, 4, 8, 16, 32} {
			add(kernel.YMM, in, col.WaitingPct, col.Imbalance)
		}
	}
	// A few imbalanced xmm variants, as in Table II.
	add(kernel.XMM, 32, 75, 2)
	add(kernel.XMM, 16, 25, 2)
	add(kernel.XMM, 8, 50, 3)
	return cfgs
}

// mixJobs builds JobSpecs of NodesPerJob nodes each.
func mixJobs(name string, cfgs []kernel.Config) []JobSpec {
	jobs := make([]JobSpec, len(cfgs))
	for i, c := range cfgs {
		jobs[i] = JobSpec{
			ID:     fmt.Sprintf("%s-j%d-%s", name, i, c.Name()),
			Config: c,
			Nodes:  NodesPerJob,
		}
	}
	return jobs
}

// NeedUsedPower is the best case for MinimizeWaste: low-power balanced
// jobs alongside one high-compute-intensity job, with all used power needed
// for performance (no waiting ranks anywhere).
func NeedUsedPower() Mix {
	cfgs := []kernel.Config{
		{Intensity: 1, Vector: kernel.Scalar, Imbalance: 1},
		{Intensity: 8, Vector: kernel.Scalar, Imbalance: 1},
		{Intensity: 32, Vector: kernel.Scalar, Imbalance: 1},
		{Intensity: 0.5, Vector: kernel.XMM, Imbalance: 1},
		{Intensity: 1, Vector: kernel.XMM, Imbalance: 1},
		{Intensity: 32, Vector: kernel.XMM, Imbalance: 1},
		{Intensity: 0.5, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 1, Vector: kernel.YMM, Imbalance: 1},
		// The one high-compute-intensity job the spare power should reach.
		{Intensity: 32, Vector: kernel.YMM, Imbalance: 1},
	}
	return Mix{Name: "NeedUsedPower", Jobs: mixJobs("nup", cfgs)}
}

// HighImbalance is the best case for JobAdaptive: one highly imbalanced
// job across every node of the system.
func HighImbalance() Mix {
	cfg := kernel.Config{Intensity: 16, Vector: kernel.YMM, WaitingPct: 75, Imbalance: 3}
	return Mix{Name: "HighImbalance", Jobs: []JobSpec{{
		ID:     "himb-j0-" + cfg.Name(),
		Config: cfg,
		Nodes:  TotalNodes,
	}}}
}

// WastefulPower is the best case for MixedAdaptive: jobs whose
// unconstrained power significantly exceeds their performance-balanced
// power, due to waiting ranks spinning at barriers.
func WastefulPower() Mix {
	cfgs := []kernel.Config{
		{Intensity: 0.25, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 2},
		{Intensity: 1, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 3},
		{Intensity: 2, Vector: kernel.YMM, WaitingPct: 75, Imbalance: 3},
		{Intensity: 4, Vector: kernel.YMM, WaitingPct: 75, Imbalance: 2},
		{Intensity: 8, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 2},
		{Intensity: 8, Vector: kernel.YMM, WaitingPct: 75, Imbalance: 3},
		{Intensity: 16, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 3},
		{Intensity: 16, Vector: kernel.YMM, WaitingPct: 75, Imbalance: 2},
		{Intensity: 32, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 2},
	}
	return Mix{Name: "WastefulPower", Jobs: mixJobs("wst", cfgs)}
}

// LowPower takes the nine lowest-power configurations of the catalog,
// ranked by uncapped (monitor) per-host power from the characterization.
func LowPower(db *charz.DB) (Mix, error) {
	cfgs, err := rankByMonitorPower(db, false)
	if err != nil {
		return Mix{}, err
	}
	return Mix{Name: "LowPower", Jobs: mixJobs("low", cfgs[:JobsPerMix])}, nil
}

// HighPower takes the nine highest-power configurations of the catalog.
func HighPower(db *charz.DB) (Mix, error) {
	cfgs, err := rankByMonitorPower(db, true)
	if err != nil {
		return Mix{}, err
	}
	return Mix{Name: "HighPower", Jobs: mixJobs("high", cfgs[:JobsPerMix])}, nil
}

// RandomLarge draws nine catalog configurations from a seeded shuffle.
func RandomLarge(seed uint64) Mix {
	cfgs := Catalog()
	rng := rand.New(rand.NewPCG(seed, seed^0xA5A5A5A5DEADBEEF))
	rng.Shuffle(len(cfgs), func(i, j int) { cfgs[i], cfgs[j] = cfgs[j], cfgs[i] })
	return Mix{Name: "RandomLarge", Jobs: mixJobs("rnd", cfgs[:JobsPerMix])}
}

// rankByMonitorPower sorts the catalog by characterized uncapped power.
func rankByMonitorPower(db *charz.DB, descending bool) ([]kernel.Config, error) {
	if db == nil {
		return nil, errors.New("workload: nil characterization database")
	}
	cfgs := Catalog()
	type ranked struct {
		cfg kernel.Config
		p   units.Power
	}
	rs := make([]ranked, 0, len(cfgs))
	for _, c := range cfgs {
		e, err := db.MustGet(c)
		if err != nil {
			return nil, err
		}
		rs = append(rs, ranked{cfg: c, p: e.MonitorHostPower})
	}
	sort.SliceStable(rs, func(i, j int) bool {
		if descending {
			return rs[i].p > rs[j].p
		}
		return rs[i].p < rs[j].p
	})
	out := make([]kernel.Config, len(rs))
	for i, r := range rs {
		out[i] = r.cfg
	}
	return out, nil
}

// Mixes assembles all six mixes of Table II, in the paper's column order.
func Mixes(db *charz.DB, seed uint64) ([]Mix, error) {
	low, err := LowPower(db)
	if err != nil {
		return nil, err
	}
	high, err := HighPower(db)
	if err != nil {
		return nil, err
	}
	return []Mix{
		NeedUsedPower(),
		HighImbalance(),
		WastefulPower(),
		low,
		high,
		RandomLarge(seed),
	}, nil
}

// Budgets holds the three over-provisioning levels of Table III.
type Budgets struct {
	// Min is the aggressively over-provisioned budget: every node gets
	// the mean per-node needed power of the mix's least-needy workload.
	Min units.Power
	// Ideal sums the characterized needed power of every host of every
	// job — exactly enough when shared perfectly.
	Ideal units.Power
	// Max is the conservatively over-provisioned budget: every node gets
	// the most power any single node consumed uncapped.
	Max units.Power
}

// Levels returns the budgets in (name, value) order for iteration.
func (b Budgets) Levels() []struct {
	Name  string
	Power units.Power
} {
	return []struct {
		Name  string
		Power units.Power
	}{
		{"min", b.Min},
		{"ideal", b.Ideal},
		{"max", b.Max},
	}
}

// SelectBudgets computes the Table III budgets of a mix from its
// characterization entries.
func SelectBudgets(m Mix, db *charz.DB) (Budgets, error) {
	if db == nil {
		return Budgets{}, errors.New("workload: nil characterization database")
	}
	if len(m.Jobs) == 0 {
		return Budgets{}, fmt.Errorf("workload: mix %s has no jobs", m.Name)
	}
	var b Budgets
	minNeeded := units.Power(1e18)
	var maxUncapped units.Power
	// Corrupt entries (NaN-poisoned power fields) are excluded from the
	// extrema and the ideal sum — one damaged record must not poison the
	// whole mix's budget selection — and their jobs are charged the mean
	// per-host ideal of the valid jobs afterwards.
	var validHosts, corruptHosts int
	for _, j := range m.Jobs {
		e, err := db.MustGet(j.Config)
		if err != nil {
			return Budgets{}, err
		}
		if !e.Valid() {
			corruptHosts += j.Nodes
			continue
		}
		// "The workload in the mix [with] the least power consumed by a
		// single node under the performance-aware characterization":
		// read as the workload whose nodes need the least power on
		// average (one node as a representative of the workload). Taking
		// instead the least *individual* host would pin the min budget
		// exactly at the global least need, which structurally zeroes
		// every policy difference at the min budget — contradicting the
		// paper's marker-(e) time savings there.
		if e.NeededMean < minNeeded {
			minNeeded = e.NeededMean
		}
		if e.MonitorMaxHostPower > maxUncapped {
			maxUncapped = e.MonitorMaxHostPower
		}
		nWait := bsp.WaitingHosts(j.Config, j.Nodes)
		nCrit := j.Nodes - nWait
		b.Ideal += units.Power(nCrit)*e.NeededCritical + units.Power(nWait)*e.NeededWaiting
		validHosts += j.Nodes
	}
	if validHosts == 0 {
		return Budgets{}, fmt.Errorf("workload: mix %s: %w: every entry is corrupt",
			m.Name, charz.ErrNotCharacterized)
	}
	if corruptHosts > 0 {
		b.Ideal += b.Ideal / units.Power(validHosts) * units.Power(corruptHosts)
	}
	total := units.Power(m.TotalNodes())
	b.Min = total * minNeeded
	b.Max = total * maxUncapped
	return b, nil
}

// CheckpointInterval returns the checkpoint cadence, in iterations, for
// jobs whose lengths are drawn uniformly from [minIters, maxIters]: every
// ~5% of the mean job length, at least 1. Five percent is the conventional
// operating point of checkpoint/restart studies — frequent enough that a
// preemption loses little work, sparse enough that checkpoint overhead
// (not modeled here) would stay in the noise. The facility cmds use this
// as the default when checkpointing is enabled without an explicit cadence.
func CheckpointInterval(minIters, maxIters int) int {
	mean := (minIters + maxIters) / 2
	k := mean / 20
	if k < 1 {
		k = 1
	}
	return k
}
