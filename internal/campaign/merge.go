package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MergeReports joins the partial reports produced by sharded campaign runs
// (Config.Shards > 1) back into the full report. The shards must cover the
// scenario matrix exactly — every index 0..N-1 present once — and agree on
// the node count. The merged report is assembled by the same code path as a
// single-process run, so the two serialize to identical bytes.
func MergeReports(shards ...*Report) (*Report, error) {
	if len(shards) == 0 {
		return nil, errors.New("campaign: no shard reports to merge")
	}
	nodes := shards[0].Nodes
	total := 0
	for i, s := range shards {
		if s == nil {
			return nil, fmt.Errorf("campaign: shard report %d is nil", i)
		}
		if s.Nodes != nodes {
			return nil, fmt.Errorf("campaign: shard report %d has %d nodes, others %d", i, s.Nodes, nodes)
		}
		total += len(s.Scenarios)
	}
	merged := make([]ScenarioResult, total)
	seen := make([]bool, total)
	for _, s := range shards {
		for _, sr := range s.Scenarios {
			if sr.Index < 0 || sr.Index >= total {
				return nil, fmt.Errorf("campaign: scenario index %d outside 0..%d — missing shard?", sr.Index, total-1)
			}
			if seen[sr.Index] {
				return nil, fmt.Errorf("campaign: scenario index %d appears twice — duplicate shard?", sr.Index)
			}
			seen[sr.Index] = true
			merged[sr.Index] = sr
		}
	}
	return assembleReport(nodes, merged), nil
}

// ReadReport deserializes a report written by Report.WriteJSON.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("campaign: read report: %w", err)
	}
	return &rep, nil
}
