package campaign

import (
	"context"
	"testing"
	"time"

	"powerstack/internal/charz"
	"powerstack/internal/cluster"
	"powerstack/internal/cpumodel"
	"powerstack/internal/facility"
	"powerstack/internal/policy"
	"powerstack/internal/units"
)

// benchSetup mirrors testRunner without a *testing.T, sized for a
// 16-scenario matrix.
func benchSetup(b *testing.B) (*Runner, Config) {
	b.Helper()
	const nodes = 6
	c, err := cluster.New(nodes+3, cpumodel.Quartz(), cpumodel.QuartzVariation(), 11)
	if err != nil {
		b.Fatal(err)
	}
	pool := c.Nodes()
	opt := charz.Options{MonitorIters: 10, BalancerIters: 40, Seed: 2, NoiseSigma: -1}
	db, err := charz.CharacterizeAll(context.Background(), testWorkloads(), pool[nodes:], opt)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Base: facility.Config{
			MinJobIterations: 500,
			MaxJobIterations: 2000,
			JobSizes:         []int{2, 4},
			Workloads:        testWorkloads(),
			Duration:         4 * time.Hour,
			Tick:             time.Minute,
		},
		Seeds:         []uint64{1, 2, 3, 4, 5, 6, 7, 8},
		Interarrivals: []time.Duration{20 * time.Minute},
		Budgets:       []units.Power{nodes * 240},
		Policies:      []policy.Policy{policy.StaticCaps{}, policy.MixedAdaptive{}},
	}
	return &Runner{Nodes: pool[:nodes], DB: db}, cfg
}

func benchmarkCampaign(b *testing.B, parallel int) {
	r, cfg := benchSetup(b)
	cfg.Parallelism = parallel
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(ctx, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignSequential(b *testing.B) { benchmarkCampaign(b, 1) }
func BenchmarkCampaignParallel4(b *testing.B)  { benchmarkCampaign(b, 4) }
func BenchmarkCampaignParallel8(b *testing.B)  { benchmarkCampaign(b, 8) }
