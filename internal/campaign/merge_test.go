package campaign

import (
	"bytes"
	"context"
	"testing"
	"time"

	"powerstack/internal/facility"
	"powerstack/internal/fault"
)

// TestShardMergeByteIdentical is the shard distribution contract: running
// the matrix as N shard slices and merging their partial reports must
// produce a report byte-identical to a single-process run — including the
// groups, comparisons, and emergency comparisons recomputed from the
// merged scenario results.
func TestShardMergeByteIdentical(t *testing.T) {
	const nodes = 6
	r := testRunner(t, nodes)
	cfg := testConfig(nodes)
	cfg.FaultPlans = []NamedFaultPlan{
		{Name: "clean"},
		{Name: "crash", Plan: fault.NewPlan(fault.Injection{Kind: fault.NodeCrash, Node: "quartz0001", At: 30 * time.Minute, RepairAfter: time.Hour})},
	}
	cfg.Emergencies = []facility.EmergencyPolicy{facility.EmergencyThrottle, facility.EmergencyPreempt}

	full, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, nShards := range []int{2, 3} {
		shards := make([]*Report, nShards)
		for s := 0; s < nShards; s++ {
			scfg := cfg
			scfg.Shard, scfg.Shards = s, nShards
			rep, err := r.Run(context.Background(), scfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Groups) != 0 || len(rep.Comparisons) != 0 {
				t.Fatalf("shard %d/%d report carries aggregates", s, nShards)
			}
			shards[s] = rep
		}
		merged, err := MergeReports(shards...)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mustJSON(t, full), mustJSON(t, merged)) {
			t.Fatalf("%d-shard merge differs from single-process report", nShards)
		}
	}
}

// TestShardJSONRoundTrip pins the cmd/campaign merge path: shard reports
// survive a WriteJSON/ReadReport round trip and still merge byte-identical
// to the full run.
func TestShardJSONRoundTrip(t *testing.T) {
	const nodes = 4
	r := testRunner(t, nodes)
	cfg := testConfig(nodes)

	full, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var shards []*Report
	for s := 0; s < 2; s++ {
		scfg := cfg
		scfg.Shard, scfg.Shards = s, 2
		rep, err := r.Run(context.Background(), scfg)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ReadReport(bytes.NewReader(mustJSON(t, rep)))
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, back)
	}
	merged, err := MergeReports(shards...)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, full), mustJSON(t, merged)) {
		t.Fatal("merged round-tripped shards differ from single-process report")
	}
}

// TestMergeRejectsIncomplete checks coverage validation: duplicated or
// missing indexes are merge errors, not silent misaggregation.
func TestMergeRejectsIncomplete(t *testing.T) {
	a := &Report{Nodes: 4, Scenarios: []ScenarioResult{{Index: 0}, {Index: 1}}}
	b := &Report{Nodes: 4, Scenarios: []ScenarioResult{{Index: 3}}}
	if _, err := MergeReports(a, b); err == nil {
		t.Fatal("merge accepted a gap in index coverage")
	}
	dup := &Report{Nodes: 4, Scenarios: []ScenarioResult{{Index: 1}}}
	if _, err := MergeReports(a, dup); err == nil {
		t.Fatal("merge accepted a duplicated index")
	}
	other := &Report{Nodes: 8, Scenarios: []ScenarioResult{{Index: 2}}}
	if _, err := MergeReports(a, other); err == nil {
		t.Fatal("merge accepted mismatched node counts")
	}
}
