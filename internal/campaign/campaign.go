// Package campaign is the multi-run evaluation engine: it fans a scenario
// matrix (seeds × interarrival rates × budgets × policies × fault plans ×
// emergency responses) of facility simulations across a bounded worker
// pool and aggregates the
// per-seed outcomes into the per-group statistics (mean, bootstrap CI,
// policy-vs-policy Welch tests) the paper's policy ranking rests on.
//
// Determinism is the contract the whole package is built around, following
// the sim grid's cell-isolation pattern: every scenario runs on its own
// clone pool (recycled through a cluster.PoolRecycler rather than freshly
// cloned each time), results land in index-addressed slots, errors are
// reported in matrix order, and the Report carries no wall-clock or
// scheduling-order data — so a campaign's serialized output is
// byte-identical at any parallelism, including fully sequential.
package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"powerstack/internal/charz"
	"powerstack/internal/cluster"
	"powerstack/internal/facility"
	"powerstack/internal/fault"
	"powerstack/internal/node"
	"powerstack/internal/obs"
	"powerstack/internal/policy"
	"powerstack/internal/units"
)

// NamedFaultPlan pairs a fault plan with the label it appears under in
// reports. A nil Plan (or nil-Plan entry) is the clean lane.
type NamedFaultPlan struct {
	Name string
	Plan *fault.Plan
}

// Config describes a campaign: a base facility configuration plus the
// matrix axes swept over it.
type Config struct {
	// Base is the facility configuration template every scenario starts
	// from. Its Nodes, DB, Obs, Seed, MeanInterarrival, SystemBudget,
	// Policy, Faults, and Emergency fields are overridden per scenario;
	// everything else (workloads, job geometry, budget timeline, duration,
	// tick, engine) is shared.
	Base facility.Config

	// Seeds are the replication axis: every (interarrival, budget, policy,
	// fault) cell runs once per seed, and per-group statistics aggregate
	// across them.
	Seeds []uint64
	// Interarrivals sweeps the Poisson arrival process' mean gap.
	Interarrivals []time.Duration
	// Budgets sweeps the facility power limit.
	Budgets []units.Power
	// Policies sweeps the Section III policies under comparison.
	Policies []policy.Policy
	// FaultPlans optionally sweeps fault lanes; empty runs one clean lane.
	FaultPlans []NamedFaultPlan
	// Emergencies optionally sweeps the budget-emergency response
	// (preempt/throttle/kill) so identical shocks — same budget timeline,
	// same fault lane, same seeds — rank the responses against each other.
	// Empty runs one lane with Base.Emergency.
	Emergencies []facility.EmergencyPolicy

	// Parallelism bounds the worker pool; <= 0 selects GOMAXPROCS. 1 is
	// fully sequential and produces byte-identical reports to any other
	// setting.
	Parallelism int

	// Shard and Shards distribute the matrix across processes: with
	// Shards > 1 this runner executes only the scenarios whose
	// Index % Shards == Shard and returns a partial report carrying just
	// those scenario results (no groups or comparisons — aggregation needs
	// the full matrix). MergeReports joins the partial reports of all
	// shards into a report byte-identical to a single-process run. The
	// zero values disable sharding.
	Shard  int
	Shards int

	// FlightDir, when non-empty, enables the flight recorder: every failed
	// scenario — and every successful one the Anomalous predicate flags —
	// writes a self-contained post-mortem artifact
	// (flight-<index>-<reason>.json) into this directory. The directory is
	// created if missing. Flight artifacts carry wall-clock data and never
	// feed the Report, so determinism is unaffected.
	FlightDir string `json:"-"`
	// Anomalous flags a successful scenario's result for flight capture;
	// nil selects DefaultAnomalous. Only consulted when FlightDir is set.
	Anomalous func(*facility.Result) bool `json:"-"`
}

// DefaultAnomalous is the stock anomaly predicate: a scenario that
// quarantined a node, requeued a job, or shed jobs to a budget emergency
// saw its degradation machinery bite and is worth a post-mortem.
func DefaultAnomalous(res *facility.Result) bool {
	return res.Quarantined > 0 || res.Requeued > 0 || res.Preempted > 0 || res.Killed > 0
}

// Scenario is one fully instantiated cell of the matrix.
type Scenario struct {
	Index        int
	Seed         uint64
	Interarrival time.Duration
	Budget       units.Power
	Policy       policy.Policy
	Fault        NamedFaultPlan
	Emergency    facility.EmergencyPolicy
}

// emergencyLanes resolves the emergency axis: the configured sweep, or one
// lane carrying the base configuration's response.
func (c *Config) emergencyLanes() []facility.EmergencyPolicy {
	if len(c.Emergencies) == 0 {
		return []facility.EmergencyPolicy{c.Base.Emergency}
	}
	return c.Emergencies
}

// scenarios enumerates the matrix in canonical order: policy-major, then
// interarrival, budget, fault lane, emergency response, and seeds
// innermost — so one group's replications are contiguous and the group
// order matches the report.
func (c *Config) scenarios() []Scenario {
	plans := c.FaultPlans
	if len(plans) == 0 {
		plans = []NamedFaultPlan{{Name: "clean"}}
	}
	emergencies := c.emergencyLanes()
	out := make([]Scenario, 0, len(c.Policies)*len(c.Interarrivals)*len(c.Budgets)*len(plans)*len(emergencies)*len(c.Seeds))
	for _, pol := range c.Policies {
		for _, ia := range c.Interarrivals {
			for _, budget := range c.Budgets {
				for _, plan := range plans {
					for _, em := range emergencies {
						for _, seed := range c.Seeds {
							out = append(out, Scenario{
								Index:        len(out),
								Seed:         seed,
								Interarrival: ia,
								Budget:       budget,
								Policy:       pol,
								Fault:        plan,
								Emergency:    em,
							})
						}
					}
				}
			}
		}
	}
	return out
}

func (c *Config) validate() error {
	if len(c.Seeds) == 0 {
		return errors.New("campaign: no seeds")
	}
	if len(c.Interarrivals) == 0 {
		return errors.New("campaign: no interarrival rates")
	}
	if len(c.Budgets) == 0 {
		return errors.New("campaign: no budgets")
	}
	if len(c.Policies) == 0 {
		return errors.New("campaign: no policies")
	}
	for _, p := range c.Policies {
		if p == nil {
			return errors.New("campaign: nil policy")
		}
	}
	if c.Shards > 1 && (c.Shard < 0 || c.Shard >= c.Shards) {
		return fmt.Errorf("campaign: shard %d outside [0,%d)", c.Shard, c.Shards)
	}
	if c.Shards <= 1 && c.Shard != 0 {
		return errors.New("campaign: shard set without shards")
	}
	return nil
}

// Runner executes campaigns over a source node pool and a shared
// characterization database.
type Runner struct {
	// Nodes is the pristine source pool. It is never run on directly:
	// every scenario gets an isolated clone (recycled between scenarios).
	Nodes []*node.Node
	// DB is the shared characterization database; it must cover
	// Base.Workloads. Campaign workers only read it (fault lanes corrupt
	// private clones), so one DB serves all scenarios.
	DB *charz.DB
	// Obs, when set, journals shard starts/finishes and counts scenarios;
	// it receives wall-clock data, which deliberately never reaches the
	// Report.
	Obs *obs.Sink
}

// Run executes the campaign matrix and aggregates the report. The report
// is independent of Parallelism and of worker scheduling: scenario results
// are slotted by matrix index, aggregation follows matrix order, and on
// error the first failure in matrix order is returned (as Run's error,
// wrapped with its scenario), regardless of which worker hit an error
// first on the wall clock.
func (r *Runner) Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(r.Nodes) == 0 {
		return nil, errors.New("campaign: runner has no nodes")
	}
	scenarios := cfg.scenarios()

	// Sharding keeps the full enumeration (indexes address the whole
	// matrix) but runs only this shard's deterministic slice of it.
	run := scenarios
	if cfg.Shards > 1 {
		run = nil
		for _, sc := range scenarios {
			if sc.Index%cfg.Shards == cfg.Shard {
				run = append(run, sc)
			}
		}
		if len(run) == 0 {
			return &Report{Nodes: len(r.Nodes)}, nil
		}
	}

	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(run) {
		workers = len(run)
	}

	if cfg.FlightDir != "" {
		if err := os.MkdirAll(cfg.FlightDir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: flight dir: %w", err)
		}
	}

	// The campaign root span parents every scenario span; one trace covers
	// the whole matrix.
	root := r.Obs.StartSpan(obs.SpanContext{}, "campaign", "campaign").
		SetIter(len(run)).SetValue(float64(workers))
	defer root.End()

	results := make([]*facility.Result, len(scenarios))
	errs := make([]error, len(run))
	recycler := cluster.NewPoolRecycler(r.Nodes)
	tasks := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for idx := range tasks {
				if err := ctx.Err(); err != nil {
					errs[idx] = err
					continue
				}
				errs[idx] = r.runScenario(ctx, &cfg, run[idx], worker, root.Ctx(), recycler, results)
			}
		}(w)
	}
	for idx := range run {
		tasks <- idx
	}
	close(tasks)
	wg.Wait()

	for idx, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("campaign: scenario %d (%s): %w", run[idx].Index, describe(run[idx]), err)
		}
	}

	if cfg.Shards > 1 {
		rep := &Report{Nodes: len(r.Nodes), Scenarios: make([]ScenarioResult, len(run))}
		for i, sc := range run {
			rep.Scenarios[i] = scenarioResult(sc, results[sc.Index])
		}
		return rep, nil
	}
	return buildReport(len(r.Nodes), cfg, scenarios, results), nil
}

// runScenario executes one cell on a recycled clone pool.
func (r *Runner) runScenario(ctx context.Context, cfg *Config, sc Scenario, worker int, parent obs.SpanContext, recycler *cluster.PoolRecycler, results []*facility.Result) error {
	r.Obs.CampaignShardStart(sc.Policy.Name(), sc.Index, worker)
	start := time.Now()

	sp := r.Obs.StartSpan(parent, "campaign", "scenario").
		SetScope(sc.Policy.Name()).SetIter(sc.Index).SetValue(sc.Budget.Watts())
	defer sp.End()

	pool := recycler.Acquire()
	fc := cfg.Base
	fc.Nodes = pool
	fc.DB = r.DB
	fc.Obs = r.Obs
	fc.SpanParent = sp.Ctx()
	fc.Seed = sc.Seed
	fc.MeanInterarrival = sc.Interarrival
	fc.SystemBudget = sc.Budget
	fc.Policy = sc.Policy
	fc.Faults = sc.Fault.Plan
	fc.Emergency = sc.Emergency

	res, err := facility.Run(ctx, fc)
	if err != nil {
		// The pool may hold partial run state; drop it rather than
		// recycling (RestoreFrom would clean it, but an errored run is
		// rare enough that isolation beats reuse).
		r.captureFlight(cfg, sc, "error", err, nil)
		return err
	}
	recycler.Release(pool)
	results[sc.Index] = res

	r.Obs.CampaignShardDone(sc.Policy.Name(), sc.Index, worker, time.Since(start).Seconds())
	if cfg.FlightDir != "" {
		anomalous := cfg.Anomalous
		if anomalous == nil {
			anomalous = DefaultAnomalous
		}
		if anomalous(res) {
			r.captureFlight(cfg, sc, "anomalous", nil, res)
		}
	}
	return nil
}

// captureFlight writes one flight-recorder artifact for the scenario. The
// capture is post-mortem best-effort: a write failure is reported on the
// campaign's own sink and otherwise swallowed — flight recording must
// never turn a completed scenario into a failed one.
func (r *Runner) captureFlight(cfg *Config, sc Scenario, reason string, runErr error, res *facility.Result) {
	if cfg.FlightDir == "" {
		return
	}
	errText := ""
	if runErr != nil {
		errText = runErr.Error()
	}
	fr := obs.CaptureFlight(r.Obs, describe(sc), reason, errText, int64(sc.Seed))
	// The scenario's shape travels as opaque JSON so the artifact stays
	// self-describing without the flight recorder importing config types.
	summary := struct {
		Policy       string        `json:"policy"`
		Interarrival time.Duration `json:"interarrival_ns"`
		Budget       float64       `json:"budget_watts"`
		FaultLane    string        `json:"fault_lane"`
		Emergency    string        `json:"emergency,omitempty"`
		Duration     time.Duration `json:"duration_ns"`
		Tick         time.Duration `json:"tick_ns"`
		Engine       string        `json:"engine,omitempty"`
		Nodes        int           `json:"nodes"`
	}{
		Policy:       sc.Policy.Name(),
		Interarrival: sc.Interarrival,
		Budget:       sc.Budget.Watts(),
		FaultLane:    sc.Fault.Name,
		Emergency:    string(sc.Emergency),
		Duration:     cfg.Base.Duration,
		Tick:         cfg.Base.Tick,
		Engine:       cfg.Base.Engine,
		Nodes:        len(r.Nodes),
	}
	if b, err := json.Marshal(summary); err == nil {
		fr.Config = b
	}
	if sc.Fault.Plan != nil {
		if b, err := json.Marshal(sc.Fault.Plan); err == nil {
			fr.FaultPlan = b
		}
	}
	if res != nil {
		if b, err := json.Marshal(res); err == nil {
			fr.Result = b
		}
	}
	path := filepath.Join(cfg.FlightDir, fmt.Sprintf("flight-%04d-%s.json", sc.Index, reason))
	if err := fr.WriteFile(path); err != nil {
		r.Obs.Record(obs.Event{Type: "flight_write_failed", Layer: "campaign", Scope: path})
	}
}

func describe(sc Scenario) string {
	s := fmt.Sprintf("policy=%s ia=%s budget=%s fault=%s seed=%d",
		sc.Policy.Name(), sc.Interarrival, sc.Budget, sc.Fault.Name, sc.Seed)
	if sc.Emergency != "" {
		s += fmt.Sprintf(" emergency=%s", sc.Emergency)
	}
	return s
}
