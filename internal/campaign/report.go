package campaign

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"math"
	"math/rand/v2"
	"strconv"
	"time"

	"powerstack/internal/facility"
	"powerstack/internal/stats"
	"powerstack/internal/units"
)

// ScenarioResult is the deterministic outcome of one scenario. It carries
// only simulation-derived quantities — no wall-clock times, no worker
// identities — so serialized reports are byte-identical across parallelism
// settings.
type ScenarioResult struct {
	Index        int           `json:"index"`
	Seed         uint64        `json:"seed"`
	Interarrival time.Duration `json:"interarrival_ns"`
	Budget       units.Power   `json:"budget_watts"`
	Policy       string        `json:"policy"`
	Fault        string        `json:"fault"`
	Emergency    string        `json:"emergency,omitempty"`

	Submitted            int           `json:"submitted"`
	Started              int           `json:"started"`
	Completed            int           `json:"completed"`
	QueuedAtEnd          int           `json:"queued_at_end"`
	MeanQueueWait        time.Duration `json:"mean_queue_wait_ns"`
	MeanNodeUtilization  float64       `json:"mean_node_utilization"`
	MeanPower            units.Power   `json:"mean_power_watts"`
	PeakPower            units.Power   `json:"peak_power_watts"`
	TotalEnergy          units.Energy  `json:"total_energy_joules"`
	BudgetViolationTicks int           `json:"budget_violation_ticks"`
	Requeued             int           `json:"requeued"`
	Quarantined          int           `json:"quarantined"`
	Rejoined             int           `json:"rejoined"`
	BudgetChanges        int           `json:"budget_changes,omitempty"`
	Preempted            int           `json:"preempted,omitempty"`
	Killed               int           `json:"killed,omitempty"`
	Resumed              int           `json:"resumed,omitempty"`
	Rejected             int           `json:"rejected,omitempty"`
}

// Metric is the aggregate of one quantity across a group's seeds: the
// descriptive summary plus a percentile-bootstrap 95% CI of the mean.
type Metric struct {
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// CI95 is the half-width of the t-distribution confidence interval
	// (the Figure 8 error bar convention).
	CI95 float64 `json:"ci95"`
	// BootLo and BootHi bound the bootstrap percentile interval.
	BootLo float64 `json:"boot_lo"`
	BootHi float64 `json:"boot_hi"`
}

// Group aggregates one (policy, interarrival, budget, fault, emergency)
// cell across its seeds.
type Group struct {
	Policy       string        `json:"policy"`
	Interarrival time.Duration `json:"interarrival_ns"`
	Budget       units.Power   `json:"budget_watts"`
	Fault        string        `json:"fault"`
	Emergency    string        `json:"emergency,omitempty"`
	Seeds        int           `json:"seeds"`

	Energy      Metric `json:"total_energy_joules"`
	QueueWait   Metric `json:"mean_queue_wait_seconds"`
	MeanPower   Metric `json:"mean_power_watts"`
	Completed   Metric `json:"completed_jobs"`
	Utilization Metric `json:"mean_node_utilization"`
}

// Comparison is a Welch two-sample test of one policy against the baseline
// policy on the same (interarrival, budget, fault, emergency) cell.
type Comparison struct {
	Baseline     string        `json:"baseline"`
	Policy       string        `json:"policy"`
	Interarrival time.Duration `json:"interarrival_ns"`
	Budget       units.Power   `json:"budget_watts"`
	Fault        string        `json:"fault"`
	Emergency    string        `json:"emergency,omitempty"`

	// EnergyChange and QueueWaitChange are relative changes of the group
	// means versus the baseline ((policy-baseline)/baseline, the Figure 8
	// transformation); the T/Significant pairs are the Welch test results
	// deciding whether each change exceeds run-to-run noise.
	EnergyChange         float64 `json:"energy_change"`
	EnergyT              float64 `json:"energy_t"`
	EnergySignificant    bool    `json:"energy_significant"`
	QueueWaitChange      float64 `json:"queue_wait_change"`
	QueueWaitT           float64 `json:"queue_wait_t"`
	QueueWaitSignificant bool    `json:"queue_wait_significant"`

	// The Paired variants exploit that both policies ran the same seeds —
	// identical arrival times and job draws — so the per-seed difference
	// cancels the seed-to-seed workload variance the unpaired Welch test
	// must absorb. They are one-sample t tests of the per-seed deltas
	// against zero, and are the sharper instrument when the policy effect
	// is small next to the draw variance.
	EnergyPairedT           float64 `json:"energy_paired_t"`
	EnergyPairedSignificant bool    `json:"energy_paired_significant"`
	WaitPairedT             float64 `json:"queue_wait_paired_t"`
	WaitPairedSignificant   bool    `json:"queue_wait_paired_significant"`
}

// EmergencyComparison ranks one emergency response against the baseline
// response (the first Emergencies entry) on the same (policy,
// interarrival, budget, fault) cell. Both lanes run identical shocks —
// same budget timeline, same fault plan, same seeds — so the per-seed
// deltas isolate the response's effect, and the paired t test decides
// whether the throughput and energy differences exceed noise.
type EmergencyComparison struct {
	Baseline     string        `json:"baseline_emergency"`
	Emergency    string        `json:"emergency"`
	Policy       string        `json:"policy"`
	Interarrival time.Duration `json:"interarrival_ns"`
	Budget       units.Power   `json:"budget_watts"`
	Fault        string        `json:"fault"`

	// CompletedChange is the relative change in mean completed jobs versus
	// the baseline response; the paired pair tests the per-seed deltas.
	CompletedChange            float64 `json:"completed_change"`
	CompletedPairedT           float64 `json:"completed_paired_t"`
	CompletedPairedSignificant bool    `json:"completed_paired_significant"`
	EnergyChange               float64 `json:"energy_change"`
	EnergyPairedT              float64 `json:"energy_paired_t"`
	EnergyPairedSignificant    bool    `json:"energy_paired_significant"`
	// MeanPreempted and MeanKilled contextualize the ranking: how many
	// jobs this lane's response actually shed per run, on average.
	MeanPreempted float64 `json:"mean_preempted"`
	MeanKilled    float64 `json:"mean_killed"`
}

// Report is a campaign's full deterministic output.
type Report struct {
	Nodes                int                   `json:"nodes"`
	Scenarios            []ScenarioResult      `json:"scenarios"`
	Groups               []Group               `json:"groups"`
	Comparisons          []Comparison          `json:"comparisons"`
	EmergencyComparisons []EmergencyComparison `json:"emergency_comparisons,omitempty"`
}

// bootResamples sizes the bootstrap distributions behind every group CI.
const bootResamples = 2000

func scenarioResult(sc Scenario, res *facility.Result) ScenarioResult {
	return ScenarioResult{
		Index:                sc.Index,
		Seed:                 sc.Seed,
		Interarrival:         sc.Interarrival,
		Budget:               sc.Budget,
		Policy:               sc.Policy.Name(),
		Fault:                sc.Fault.Name,
		Emergency:            string(sc.Emergency),
		Submitted:            res.Submitted,
		Started:              res.Started,
		Completed:            res.Completed,
		QueuedAtEnd:          res.QueuedAtEnd,
		MeanQueueWait:        res.MeanQueueWait,
		MeanNodeUtilization:  res.MeanNodeUtilization,
		MeanPower:            res.MeanPower,
		PeakPower:            res.PeakPower,
		TotalEnergy:          res.TotalEnergy,
		BudgetViolationTicks: res.BudgetViolationTicks,
		Requeued:             res.Requeued,
		Quarantined:          res.Quarantined,
		Rejoined:             res.Rejoined,
		BudgetChanges:        res.BudgetChanges,
		Preempted:            res.Preempted,
		Killed:               res.Killed,
		Resumed:              res.Resumed,
		Rejected:             res.Rejected,
	}
}

// metric aggregates xs with a group-seeded bootstrap. The RNG is derived
// from the group's matrix position, never from scheduling, keeping the CI
// identical at any parallelism.
func metric(xs []float64, rng *rand.Rand) Metric {
	s, err := stats.Summarize(xs)
	if err != nil {
		return Metric{}
	}
	lo, hi := stats.BootstrapCI(xs, bootResamples, stats.Mean, 0.95, rng)
	return Metric{Mean: s.Mean, StdDev: s.StdDev, Min: s.Min, Max: s.Max, CI95: s.CI95, BootLo: lo, BootHi: hi}
}

func buildReport(nodes int, cfg Config, scenarios []Scenario, results []*facility.Result) *Report {
	srs := make([]ScenarioResult, len(scenarios))
	for i, sc := range scenarios {
		srs[i] = scenarioResult(sc, results[i])
	}
	return assembleReport(nodes, srs)
}

// axes are the matrix axis values recovered from an index-ordered scenario
// list. The canonical enumeration is policy-major with seeds innermost, so
// every axis value's first appearance follows its configuration order —
// which is what lets a merged shard set rebuild the exact report a
// single-process run would have produced.
type axes struct {
	nSeeds      int
	policies    []string
	ias         []time.Duration
	budgets     []units.Power
	faults      []string
	emergencies []string
}

func srCell(s ScenarioResult) cell {
	return cell{s.Policy, s.Fault, s.Emergency, s.Interarrival, s.Budget}
}

func inferAxes(srs []ScenarioResult) axes {
	ax := axes{nSeeds: len(srs)}
	if len(srs) == 0 {
		return ax
	}
	first := srCell(srs[0])
	for i := 1; i < len(srs); i++ {
		if srCell(srs[i]) != first {
			ax.nSeeds = i
			break
		}
	}
	seenP := map[string]bool{}
	seenIA := map[time.Duration]bool{}
	seenB := map[units.Power]bool{}
	seenF := map[string]bool{}
	seenE := map[string]bool{}
	for _, s := range srs {
		if !seenP[s.Policy] {
			seenP[s.Policy] = true
			ax.policies = append(ax.policies, s.Policy)
		}
		if !seenIA[s.Interarrival] {
			seenIA[s.Interarrival] = true
			ax.ias = append(ax.ias, s.Interarrival)
		}
		if !seenB[s.Budget] {
			seenB[s.Budget] = true
			ax.budgets = append(ax.budgets, s.Budget)
		}
		if !seenF[s.Fault] {
			seenF[s.Fault] = true
			ax.faults = append(ax.faults, s.Fault)
		}
		if !seenE[s.Emergency] {
			seenE[s.Emergency] = true
			ax.emergencies = append(ax.emergencies, s.Emergency)
		}
	}
	return ax
}

// assembleReport aggregates an index-complete, matrix-ordered scenario list
// into the full deterministic report. Both the single-process path and
// MergeReports funnel through it, so the two are byte-identical by
// construction.
func assembleReport(nodes int, srs []ScenarioResult) *Report {
	rep := &Report{Nodes: nodes, Scenarios: srs}
	ax := inferAxes(srs)
	nSeeds := ax.nSeeds
	if nSeeds == 0 {
		return rep
	}

	// Groups: scenarios are enumerated group-major with seeds innermost,
	// so each group is one contiguous block of nSeeds results.
	for base, gi := 0, 0; base+nSeeds <= len(srs); base, gi = base+nSeeds, gi+1 {
		s0 := srs[base]
		g := Group{
			Policy:       s0.Policy,
			Interarrival: s0.Interarrival,
			Budget:       s0.Budget,
			Fault:        s0.Fault,
			Emergency:    s0.Emergency,
			Seeds:        nSeeds,
		}
		energy := make([]float64, nSeeds)
		wait := make([]float64, nSeeds)
		power := make([]float64, nSeeds)
		completed := make([]float64, nSeeds)
		util := make([]float64, nSeeds)
		for i := 0; i < nSeeds; i++ {
			s := srs[base+i]
			energy[i] = s.TotalEnergy.Joules()
			wait[i] = s.MeanQueueWait.Seconds()
			power[i] = s.MeanPower.Watts()
			completed[i] = float64(s.Completed)
			util[i] = s.MeanNodeUtilization
		}
		rng := rand.New(rand.NewPCG(0xC0FFEE, uint64(gi)))
		g.Energy = metric(energy, rng)
		g.QueueWait = metric(wait, rng)
		g.MeanPower = metric(power, rng)
		g.Completed = metric(completed, rng)
		g.Utilization = metric(util, rng)
		rep.Groups = append(rep.Groups, g)
	}

	rep.Comparisons = buildComparisons(ax, srs)
	rep.EmergencyComparisons = buildEmergencyComparisons(ax, srs)
	return rep
}

// cell addresses one contiguous seed block of the matrix.
type cell struct {
	policy, fault, emergency string
	ia                       time.Duration
	budget                   units.Power
}

// indexBlocks maps every contiguous seed block's cell to its base index.
func indexBlocks(nSeeds int, srs []ScenarioResult) map[cell]int {
	blocks := map[cell]int{}
	for base := 0; base+nSeeds <= len(srs); base += nSeeds {
		blocks[srCell(srs[base])] = base
	}
	return blocks
}

func energyOf(s ScenarioResult) float64 { return s.TotalEnergy.Joules() }
func waitOf(s ScenarioResult) float64   { return s.MeanQueueWait.Seconds() }

// buildComparisons runs Welch tests of every non-baseline policy against
// the baseline (StaticCaps when present, else the first policy) on each
// (interarrival, budget, fault, emergency) cell.
func buildComparisons(ax axes, srs []ScenarioResult) []Comparison {
	if len(ax.policies) < 2 {
		return nil
	}
	baseline := ax.policies[0]
	for _, p := range ax.policies {
		if p == "StaticCaps" {
			baseline = p
			break
		}
	}

	nSeeds := ax.nSeeds
	blocks := indexBlocks(nSeeds, srs)
	series := func(base int, f func(ScenarioResult) float64) []float64 {
		xs := make([]float64, nSeeds)
		for i := range xs {
			xs[i] = f(srs[base+i])
		}
		return xs
	}

	var out []Comparison
	for _, pol := range ax.policies {
		if pol == baseline {
			continue
		}
		for _, ia := range ax.ias {
			for _, budget := range ax.budgets {
				for _, fname := range ax.faults {
					for _, em := range ax.emergencies {
						pBase, ok1 := blocks[cell{pol, fname, em, ia, budget}]
						bBase, ok2 := blocks[cell{baseline, fname, em, ia, budget}]
						if !ok1 || !ok2 {
							continue
						}
						pe, be := series(pBase, energyOf), series(bBase, energyOf)
						pw, bw := series(pBase, waitOf), series(bBase, waitOf)
						cmp := Comparison{
							Baseline:     baseline,
							Policy:       pol,
							Interarrival: ia,
							Budget:       budget,
							Fault:        fname,
							Emergency:    em,
						}
						cmp.EnergyChange = stats.RelativeChange(stats.Mean(pe), stats.Mean(be))
						cmp.EnergyT, cmp.EnergySignificant = stats.WelchTTest(pe, be)
						cmp.QueueWaitChange = stats.RelativeChange(stats.Mean(pw), stats.Mean(bw))
						cmp.QueueWaitT, cmp.QueueWaitSignificant = stats.WelchTTest(pw, bw)
						cmp.EnergyPairedT, cmp.EnergyPairedSignificant = pairedT(pe, be)
						cmp.WaitPairedT, cmp.WaitPairedSignificant = pairedT(pw, bw)
						out = append(out, cmp)
					}
				}
			}
		}
	}
	return out
}

// buildEmergencyComparisons ranks every non-baseline emergency response
// against the first configured response on each (policy, interarrival,
// budget, fault) cell. Both lanes saw byte-identical shocks and seeds, so
// the seed-paired t test on completed jobs and energy is the sharpest
// available instrument for "which response should a facility configure".
func buildEmergencyComparisons(ax axes, srs []ScenarioResult) []EmergencyComparison {
	lanes := ax.emergencies
	if len(lanes) < 2 {
		return nil
	}
	baseline := lanes[0]

	nSeeds := ax.nSeeds
	blocks := indexBlocks(nSeeds, srs)
	series := func(base int, f func(ScenarioResult) float64) []float64 {
		xs := make([]float64, nSeeds)
		for i := range xs {
			xs[i] = f(srs[base+i])
		}
		return xs
	}
	completedOf := func(s ScenarioResult) float64 { return float64(s.Completed) }
	preemptedOf := func(s ScenarioResult) float64 { return float64(s.Preempted) }
	killedOf := func(s ScenarioResult) float64 { return float64(s.Killed) }

	var out []EmergencyComparison
	for _, pol := range ax.policies {
		for _, ia := range ax.ias {
			for _, budget := range ax.budgets {
				for _, fname := range ax.faults {
					bBase, ok := blocks[cell{pol, fname, baseline, ia, budget}]
					if !ok {
						continue
					}
					for _, em := range lanes[1:] {
						pBase, ok := blocks[cell{pol, fname, em, ia, budget}]
						if !ok {
							continue
						}
						pc, bc := series(pBase, completedOf), series(bBase, completedOf)
						pe, be := series(pBase, energyOf), series(bBase, energyOf)
						cmp := EmergencyComparison{
							Baseline:     baseline,
							Emergency:    em,
							Policy:       pol,
							Interarrival: ia,
							Budget:       budget,
							Fault:        fname,
						}
						cmp.CompletedChange = stats.RelativeChange(stats.Mean(pc), stats.Mean(bc))
						cmp.CompletedPairedT, cmp.CompletedPairedSignificant = pairedT(pc, bc)
						cmp.EnergyChange = stats.RelativeChange(stats.Mean(pe), stats.Mean(be))
						cmp.EnergyPairedT, cmp.EnergyPairedSignificant = pairedT(pe, be)
						cmp.MeanPreempted = stats.Mean(series(pBase, preemptedOf))
						cmp.MeanKilled = stats.Mean(series(pBase, killedOf))
						out = append(out, cmp)
					}
				}
			}
		}
	}
	return out
}

// pairedT runs a one-sample t test of the per-seed deltas against zero:
// significant when the 95% confidence interval of the mean delta excludes
// zero. Both series must be seed-aligned, which the matrix enumeration
// guarantees (seeds are the innermost axis of every block).
func pairedT(p, b []float64) (t float64, significant bool) {
	d := make([]float64, len(p))
	for i := range d {
		d[i] = p[i] - b[i]
	}
	s, err := stats.Summarize(d)
	if err != nil || s.StdDev == 0 {
		return 0, false
	}
	t = s.Mean / (s.StdDev / math.Sqrt(float64(len(d))))
	return t, math.Abs(s.Mean) > s.CI95
}

// WriteJSON serializes the report with stable indentation; equal reports
// serialize to equal bytes.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteCSV emits one row per scenario, in matrix order.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"index", "seed", "interarrival_s", "budget_watts", "policy", "fault",
		"emergency",
		"submitted", "started", "completed", "queued_at_end",
		"mean_queue_wait_s", "mean_node_utilization", "mean_power_watts",
		"peak_power_watts", "total_energy_joules", "budget_violation_ticks",
		"requeued", "quarantined", "rejoined",
		"budget_changes", "preempted", "killed", "resumed", "rejected",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, s := range r.Scenarios {
		row := []string{
			strconv.Itoa(s.Index),
			strconv.FormatUint(s.Seed, 10),
			f(s.Interarrival.Seconds()),
			f(s.Budget.Watts()),
			s.Policy,
			s.Fault,
			s.Emergency,
			strconv.Itoa(s.Submitted),
			strconv.Itoa(s.Started),
			strconv.Itoa(s.Completed),
			strconv.Itoa(s.QueuedAtEnd),
			f(s.MeanQueueWait.Seconds()),
			f(s.MeanNodeUtilization),
			f(s.MeanPower.Watts()),
			f(s.PeakPower.Watts()),
			f(s.TotalEnergy.Joules()),
			strconv.Itoa(s.BudgetViolationTicks),
			strconv.Itoa(s.Requeued),
			strconv.Itoa(s.Quarantined),
			strconv.Itoa(s.Rejoined),
			strconv.Itoa(s.BudgetChanges),
			strconv.Itoa(s.Preempted),
			strconv.Itoa(s.Killed),
			strconv.Itoa(s.Resumed),
			strconv.Itoa(s.Rejected),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
