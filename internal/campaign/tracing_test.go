package campaign

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powerstack/internal/facility"
	"powerstack/internal/obs"
)

// TestTracingByteIdentical is the observability half of the determinism
// contract: a campaign with a live sink, spans, and the flight recorder
// enabled must serialize a report byte-identical to the same campaign on a
// nil sink — telemetry never feeds the Report.
func TestTracingByteIdentical(t *testing.T) {
	const nodes = 6
	cfg := testConfig(nodes)
	cfg.Parallelism = 1
	bare, err := testRunner(t, nodes).Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	traced := testRunner(t, nodes)
	traced.Obs = obs.New()
	cfg.Parallelism = 4
	cfg.FlightDir = t.TempDir()
	cfg.Anomalous = func(*facility.Result) bool { return true }
	got, err := traced.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(mustJSON(t, bare), mustJSON(t, got)) {
		t.Fatal("report changed when tracing and flight recording were enabled")
	}

	// Spans were recorded: one campaign root plus one span per scenario.
	scen := len(cfg.scenarios())
	if total := traced.Obs.Spans.Total(); total < uint64(scen)+1 {
		t.Errorf("spans recorded = %d, want >= %d", total, scen+1)
	}

	// Every scenario was flagged anomalous, so every scenario wrote a
	// parseable flight artifact.
	entries, err := os.ReadDir(cfg.FlightDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != scen {
		t.Fatalf("flight artifacts = %d, want %d", len(entries), scen)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), "-anomalous.json") {
			t.Errorf("unexpected artifact name %q", e.Name())
		}
		fr, err := obs.ReadFlightFile(filepath.Join(cfg.FlightDir, e.Name()))
		if err != nil {
			t.Fatalf("artifact %s unreadable: %v", e.Name(), err)
		}
		if fr.Reason != "anomalous" || fr.Scenario == "" || len(fr.Config) == 0 || len(fr.Result) == 0 {
			t.Errorf("artifact %s incomplete: %+v", e.Name(), fr)
		}
	}
}
