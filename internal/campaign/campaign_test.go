package campaign

import (
	"bytes"
	"context"
	"slices"
	"testing"
	"time"

	"powerstack/internal/charz"
	"powerstack/internal/cluster"
	"powerstack/internal/cpumodel"
	"powerstack/internal/facility"
	"powerstack/internal/fault"
	"powerstack/internal/kernel"
	"powerstack/internal/node"
	"powerstack/internal/policy"
	"powerstack/internal/units"
)

func testWorkloads() []kernel.Config {
	return []kernel.Config{
		{Intensity: 8, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 1, Vector: kernel.XMM, WaitingPct: 50, Imbalance: 2},
	}
}

// testRunner builds a small pool plus a characterization DB covering the
// test workloads.
func testRunner(t *testing.T, nodes int) *Runner {
	t.Helper()
	c, err := cluster.New(nodes+3, cpumodel.Quartz(), cpumodel.QuartzVariation(), 11)
	if err != nil {
		t.Fatal(err)
	}
	pool := c.Nodes()
	charNodes, expPool := pool[nodes:], pool[:nodes]
	opt := charz.Options{MonitorIters: 10, BalancerIters: 40, Seed: 2, NoiseSigma: -1}
	db, err := charz.CharacterizeAll(context.Background(), testWorkloads(), charNodes, opt)
	if err != nil {
		t.Fatal(err)
	}
	return &Runner{Nodes: expPool, DB: db}
}

func testConfig(nodes int) Config {
	return Config{
		Base: facility.Config{
			MinJobIterations: 500,
			MaxJobIterations: 2000,
			JobSizes:         []int{2, 4},
			Workloads:        testWorkloads(),
			Duration:         4 * time.Hour,
			Tick:             time.Minute,
		},
		Seeds:         []uint64{1, 2, 3},
		Interarrivals: []time.Duration{20 * time.Minute},
		Budgets:       []units.Power{units.Power(nodes) * 240},
		Policies:      []policy.Policy{policy.StaticCaps{}, policy.MixedAdaptive{}},
	}
}

func mustJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelMatchesSequential is the campaign determinism contract: the
// serialized report must be byte-identical at any parallelism.
func TestParallelMatchesSequential(t *testing.T) {
	const nodes = 6
	r := testRunner(t, nodes)
	cfg := testConfig(nodes)

	cfg.Parallelism = 1
	seq, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		cfg.Parallelism = par
		got, err := r.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mustJSON(t, seq), mustJSON(t, got)) {
			t.Fatalf("parallel=%d report differs from sequential", par)
		}
	}
}

// TestRecycledPoolScenarioByteIdentical is satellite 3 at the campaign
// level: a scenario that runs on a pool recycled from a fault-injecting
// predecessor must produce byte-identical results to the same scenario on
// a fresh clone.
func TestRecycledPoolScenarioByteIdentical(t *testing.T) {
	const nodes = 6
	r := testRunner(t, nodes)

	ids := make([]string, len(r.Nodes))
	for i, n := range r.Nodes {
		ids[i] = n.ID
	}
	plan := fault.Generate(ids, fault.GenOptions{Seed: 9, Horizon: 4 * time.Hour, Crashes: 1, MSRWriteFaults: 2, SlowNodes: 1})

	cfg := testConfig(nodes)
	cfg.Seeds = []uint64{7}
	cfg.Policies = []policy.Policy{policy.MixedAdaptive{}}
	cfg.FaultPlans = []NamedFaultPlan{{Name: "chaos", Plan: plan}, {Name: "clean"}}
	cfg.Parallelism = 1 // one worker: the clean lane reuses the chaos lane's pool

	both, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	cleanOnly := cfg
	cleanOnly.FaultPlans = []NamedFaultPlan{{Name: "clean"}}
	fresh, err := r.Run(context.Background(), cleanOnly)
	if err != nil {
		t.Fatal(err)
	}

	recycled := both.Scenarios[1] // clean lane, ran second on the recycled pool
	want := fresh.Scenarios[0]
	recycled.Index = want.Index // position in the matrix legitimately differs
	if recycled != want {
		t.Fatalf("clean scenario on recycled pool differs from fresh clone:\nrecycled: %+v\nfresh:    %+v", recycled, want)
	}
}

func TestReportShape(t *testing.T) {
	const nodes = 6
	r := testRunner(t, nodes)
	cfg := testConfig(nodes)
	cfg.Parallelism = 4

	rep, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantScen := len(cfg.Seeds) * len(cfg.Policies)
	if len(rep.Scenarios) != wantScen {
		t.Fatalf("scenarios = %d, want %d", len(rep.Scenarios), wantScen)
	}
	if len(rep.Groups) != len(cfg.Policies) {
		t.Fatalf("groups = %d, want %d", len(rep.Groups), len(cfg.Policies))
	}
	for _, g := range rep.Groups {
		if g.Seeds != len(cfg.Seeds) {
			t.Fatalf("group %s aggregates %d seeds, want %d", g.Policy, g.Seeds, len(cfg.Seeds))
		}
		if g.Energy.Mean <= 0 {
			t.Fatalf("group %s has non-positive mean energy", g.Policy)
		}
		if g.Energy.BootLo > g.Energy.Mean || g.Energy.BootHi < g.Energy.Mean {
			t.Fatalf("group %s bootstrap interval [%v, %v] excludes mean %v",
				g.Policy, g.Energy.BootLo, g.Energy.BootHi, g.Energy.Mean)
		}
	}
	// StaticCaps is present, so it must be the comparison baseline.
	if len(rep.Comparisons) != 1 {
		t.Fatalf("comparisons = %d, want 1", len(rep.Comparisons))
	}
	cmp := rep.Comparisons[0]
	if cmp.Baseline != "StaticCaps" || cmp.Policy != "MixedAdaptive" {
		t.Fatalf("comparison %s vs %s, want MixedAdaptive vs StaticCaps", cmp.Policy, cmp.Baseline)
	}

	// Scenario rows are in matrix order regardless of worker scheduling.
	for i, s := range rep.Scenarios {
		if s.Index != i {
			t.Fatalf("scenario %d carries index %d", i, s.Index)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	const nodes = 4
	r := testRunner(t, nodes)
	cfg := testConfig(nodes)
	cfg.Seeds = []uint64{1}
	cfg.Parallelism = 2
	rep, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(buf.Bytes(), []byte("\n"))
	if lines != 1+len(rep.Scenarios) {
		t.Fatalf("CSV has %d lines, want %d", lines, 1+len(rep.Scenarios))
	}
}

func TestValidation(t *testing.T) {
	r := testRunner(t, 4)
	ctx := context.Background()
	base := testConfig(4)

	for name, mutate := range map[string]func(*Config){
		"no seeds":    func(c *Config) { c.Seeds = nil },
		"no rates":    func(c *Config) { c.Interarrivals = nil },
		"no budgets":  func(c *Config) { c.Budgets = nil },
		"no policies": func(c *Config) { c.Policies = nil },
		"nil policy":  func(c *Config) { c.Policies = []policy.Policy{nil} },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := r.Run(ctx, cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	empty := &Runner{DB: r.DB}
	if _, err := empty.Run(ctx, base); err == nil {
		t.Error("runner without nodes accepted")
	}
}

// TestFirstErrorInMatrixOrder pins that the error a campaign reports is the
// first failing scenario in matrix order, not whichever worker failed
// first on the wall clock.
func TestFirstErrorInMatrixOrder(t *testing.T) {
	r := testRunner(t, 4)
	cfg := testConfig(4)
	// An uncharacterized workload fails facility validation for every
	// scenario; the error must name scenario 0.
	cfg.Base.Workloads = append(cfg.Base.Workloads, kernel.Config{Intensity: 99, Vector: kernel.YMM, Imbalance: 1})
	cfg.Parallelism = 4
	_, err := r.Run(context.Background(), cfg)
	if err == nil {
		t.Fatal("uncharacterized workload accepted")
	}
	if want := "campaign: scenario 0 "; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not name scenario 0", err)
	}
}

func TestCancellation(t *testing.T) {
	r := testRunner(t, 4)
	cfg := testConfig(4)
	cfg.Parallelism = 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Run(ctx, cfg); err == nil {
		t.Fatal("cancelled campaign succeeded")
	}
}

// TestPoolNeverMutated pins that the runner's source pool stays pristine:
// campaigns run only on clones.
func TestPoolNeverMutated(t *testing.T) {
	const nodes = 4
	r := testRunner(t, nodes)
	before := snapshotRegisters(r.Nodes)
	cfg := testConfig(nodes)
	cfg.Seeds = []uint64{1, 2}
	cfg.Parallelism = 2
	if _, err := r.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	after := snapshotRegisters(r.Nodes)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("source register state %d changed", i)
		}
	}
}

func snapshotRegisters(pool []*node.Node) []uint64 {
	var out []uint64
	for _, nd := range pool {
		for _, s := range nd.Sockets() {
			regs := s.Dev.Registers()
			slices.Sort(regs)
			for _, reg := range regs {
				out = append(out, uint64(reg), s.Dev.PrivilegedRead(reg))
			}
		}
	}
	return out
}

// TestEmergencyLanesRankResponses is the budget-shock acceptance at the
// campaign level: identical shocks (same budget-drop plan, same seeds) run
// once per emergency response, and the report ranks the responses against
// the first lane with seed-paired statistics. Preemption must never lose
// more completed jobs than killing.
func TestEmergencyLanesRankResponses(t *testing.T) {
	const nodes = 6
	r := testRunner(t, nodes)
	cfg := testConfig(nodes)
	cfg.Policies = []policy.Policy{policy.MixedAdaptive{}}
	cfg.Interarrivals = []time.Duration{5 * time.Minute}
	// Long jobs: several are in flight when the shock lands, so the
	// emergency response actually has victims to shed.
	cfg.Base.MinJobIterations = 20000
	cfg.Base.MaxJobIterations = 60000
	cfg.Base.CheckpointEvery = 25
	cfg.Emergencies = []facility.EmergencyPolicy{
		facility.EmergencyPreempt, facility.EmergencyThrottle, facility.EmergencyKill,
	}
	cfg.FaultPlans = []NamedFaultPlan{{Name: "shock", Plan: fault.NewPlan(
		fault.Injection{Kind: fault.BudgetDrop, At: time.Hour, Duration: time.Hour, Factor: 0.15},
	)}}
	cfg.Parallelism = 4

	rep, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantScen := len(cfg.Seeds) * len(cfg.Emergencies)
	if len(rep.Scenarios) != wantScen {
		t.Fatalf("scenarios = %d, want %d (seeds x emergencies)", len(rep.Scenarios), wantScen)
	}

	completed := map[string]int{}
	shed := map[string]int{}
	resumed := 0
	for _, s := range rep.Scenarios {
		if s.BudgetChanges == 0 {
			t.Fatalf("scenario %d saw no budget change under the shock plan", s.Index)
		}
		completed[s.Emergency] += s.Completed
		shed[s.Emergency] += s.Preempted + s.Killed
		if s.Emergency == string(facility.EmergencyPreempt) {
			resumed += s.Resumed
		}
	}
	if shed["preempt"] == 0 || shed["kill"] == 0 {
		t.Fatalf("shock shed nothing: preempt lane %d, kill lane %d", shed["preempt"], shed["kill"])
	}
	if shed["throttle"] != 0 {
		t.Fatalf("throttle lane shed %d jobs", shed["throttle"])
	}
	if resumed == 0 {
		t.Fatal("no preempted job resumed")
	}
	if completed["preempt"] < completed["kill"] {
		t.Fatalf("preempt completed %d < kill %d across seeds", completed["preempt"], completed["kill"])
	}

	// The ranking: one comparison per non-baseline lane, baselined on the
	// first Emergencies entry.
	if len(rep.EmergencyComparisons) != 2 {
		t.Fatalf("emergency comparisons = %d, want 2", len(rep.EmergencyComparisons))
	}
	for _, ec := range rep.EmergencyComparisons {
		if ec.Baseline != string(facility.EmergencyPreempt) {
			t.Errorf("comparison baselined on %q, want preempt", ec.Baseline)
		}
		if ec.Fault != "shock" {
			t.Errorf("comparison fault = %q, want shock", ec.Fault)
		}
	}
	killCmp := rep.EmergencyComparisons[1]
	if killCmp.Emergency != string(facility.EmergencyKill) {
		t.Fatalf("second comparison is %q, want kill", killCmp.Emergency)
	}
	if killCmp.MeanKilled <= 0 {
		t.Errorf("kill lane MeanKilled = %v, want > 0", killCmp.MeanKilled)
	}
	if killCmp.CompletedChange > 0 {
		t.Errorf("kill completed %+.3f%% vs preempt, want <= 0", 100*killCmp.CompletedChange)
	}

	// The emergency axis must survive serialization round trips like every
	// other axis: identical runs are byte-identical at any parallelism.
	cfg.Parallelism = 1
	seq, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, rep), mustJSON(t, seq)) {
		t.Fatal("emergency campaign not deterministic across parallelism")
	}
}
