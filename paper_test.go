// paper_test.go asserts the paper's qualitative claims end-to-end at
// reduced scale — the executable form of the EXPERIMENTS.md checklist.
// Each test names the paper artifact it covers.
package powerstack

import (
	"context"
	"math"
	"testing"

	"powerstack/internal/charz"
	"powerstack/internal/cluster"
	"powerstack/internal/cpumodel"
	"powerstack/internal/kernel"
	"powerstack/internal/policy"
	"powerstack/internal/sim"
	"powerstack/internal/workload"
)

// paperEnv builds a medium-cluster pool and characterizes the given mixes.
func paperEnv(t *testing.T, mixes []workload.Mix, poolSize int) (*sim.Runner, workload.Budgets) {
	t.Helper()
	c, err := cluster.New((poolSize+6)*5/2, cpumodel.Quartz(), cpumodel.QuartzVariation(), 23)
	if err != nil {
		t.Fatal(err)
	}
	medium, _, err := c.MediumNodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(medium) < poolSize+6 {
		t.Fatalf("medium cluster too small: %d", len(medium))
	}
	scratch := medium[:6]
	pool := medium[6 : 6+poolSize]

	db := charz.NewDB()
	seen := map[string]bool{}
	for _, m := range mixes {
		for _, cfg := range m.Configs() {
			if seen[cfg.Name()] {
				continue
			}
			seen[cfg.Name()] = true
			e, err := charz.Characterize(cfg, scratch, charz.Options{
				MonitorIters: 6, BalancerIters: 40, Seed: 2, NoiseSigma: 0,
			})
			if err != nil {
				t.Fatal(err)
			}
			db.Put(e)
		}
	}
	r := sim.NewRunner(pool, db)
	r.Iters = 25
	r.NoiseSigma = 0
	budgets, err := workload.SelectBudgets(mixes[0], db)
	if err != nil {
		t.Fatal(err)
	}
	return r, budgets
}

// Figure 4 claim: uncapped power is insensitive to imbalance and peaks at
// mid intensity within a ~10% band.
func TestPaperFigure4Claims(t *testing.T) {
	s := cpumodel.NewSocket(cpumodel.Quartz(), 1)
	var powers []float64
	for _, in := range kernel.HeatmapIntensities() {
		cfg := kernel.Config{Intensity: in, Vector: kernel.YMM, Imbalance: 1}
		op := s.Uncapped(cpumodel.Phase{Work: cfg.CriticalWork(), Vector: cfg.Vector})
		powers = append(powers, 2*op.Power.Watts())
	}
	mn, mx := powers[0], powers[0]
	for _, p := range powers {
		mn = math.Min(mn, p)
		mx = math.Max(mx, p)
	}
	if (mx-mn)/mx > 0.12 {
		t.Errorf("uncapped power band %v-%v wider than the paper's ~10%%", mn, mx)
	}
	spin := 2 * s.SpinPowerAt(s.Spec.MaxTurbo).Watts()
	if spin < 0.85*mx {
		t.Errorf("spin power %v too low for imbalance insensitivity (peak %v)", spin, mx)
	}
}

// Takeaways 2+3 on the WastefulPower mix: application awareness delivers
// the energy savings; MixedAdaptive >= JobAdaptive > MinimizeWaste ~ 0 at
// the ideal budget, and energy savings grow from min to max.
func TestPaperTakeawaysOnWastefulPower(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end grid in -short mode")
	}
	mix := workload.WastefulPower().Scaled(36)
	r, _ := paperEnv(t, []workload.Mix{mix}, mix.TotalNodes())
	mr, err := r.RunMix(context.Background(), mix)
	if err != nil {
		t.Fatal(err)
	}
	ideal := mr.Savings["ideal"]
	mixed := ideal[policy.MixedAdaptive{}.Name()]
	job := ideal[policy.JobAdaptive{}.Name()]
	waste := ideal[policy.MinimizeWaste{}.Name()]
	if mixed.Time < job.Time-0.001 {
		t.Errorf("MixedAdaptive time %v below JobAdaptive %v at ideal", mixed.Time, job.Time)
	}
	if job.Time < 0.02 {
		t.Errorf("JobAdaptive time savings %v too small at ideal", job.Time)
	}
	if math.Abs(waste.Time) > 0.01 {
		t.Errorf("MinimizeWaste time savings %v should be ~0 on this mix", waste.Time)
	}
	eMin := mr.Savings["min"][policy.MixedAdaptive{}.Name()].Energy
	eIdeal := mixed.Energy
	eMax := mr.Savings["max"][policy.MixedAdaptive{}.Name()].Energy
	if !(eMin < eIdeal && eIdeal <= eMax+0.02) {
		t.Errorf("energy savings not growing with budget: %v, %v, %v", eMin, eIdeal, eMax)
	}
	if eMax < 0.05 {
		t.Errorf("max-budget energy savings %v below the paper's scale", eMax)
	}
}

// Figure 7 claims: Precharacterized overruns tight budgets; the adaptive
// policies under-use the max budget (marker a).
func TestPaperFigure7Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end grid in -short mode")
	}
	mix := workload.WastefulPower().Scaled(27)
	r, budgets := paperEnv(t, []workload.Mix{mix}, mix.TotalNodes())

	pre, err := r.RunCell(context.Background(), mix, policy.Precharacterized{}, "min", budgets.Min)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Utilization <= 1.0 {
		t.Errorf("Precharacterized min utilization %v, want > 100%%", pre.Utilization)
	}
	static, err := r.RunCell(context.Background(), mix, policy.StaticCaps{}, "max", budgets.Max)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := r.RunCell(context.Background(), mix, policy.MixedAdaptive{}, "max", budgets.Max)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Utilization >= static.Utilization-0.02 {
		t.Errorf("marker (a): MixedAdaptive max utilization %v not clearly below StaticCaps %v",
			mixed.Utilization, static.Utilization)
	}
}

// Takeaway 4 on NeedUsedPower: no energy-saving opportunity when all used
// power is needed; MinimizeWaste finds its one time-saving niche (marker c).
func TestPaperNeedUsedPowerClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end grid in -short mode")
	}
	mix := workload.NeedUsedPower().Scaled(27)
	r, _ := paperEnv(t, []workload.Mix{mix}, mix.TotalNodes())
	mr, err := r.RunMix(context.Background(), mix)
	if err != nil {
		t.Fatal(err)
	}
	for _, lvl := range []string{"min", "ideal", "max"} {
		for p, s := range mr.Savings[lvl] {
			if s.Energy > 0.02 {
				t.Errorf("%s/%s: energy savings %v on a mix with none to give", lvl, p, s.Energy)
			}
			if s.Time < -0.02 {
				t.Errorf("%s/%s: time regression %v", lvl, p, s.Time)
			}
		}
	}
	// Marker (c): MinimizeWaste's time savings at ideal are >= its other
	// cells and non-negative.
	mwIdeal := mr.Savings["ideal"][policy.MinimizeWaste{}.Name()].Time
	if mwIdeal < 0 {
		t.Errorf("MinimizeWaste ideal time savings %v negative", mwIdeal)
	}
}

// Figure 6 claim: the variation survey separates the population into three
// ordered clusters with the medium one largest.
func TestPaperFigure6Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("population survey in -short mode")
	}
	c, err := cluster.New(600, cpumodel.Quartz(), cpumodel.QuartzVariation(), 2)
	if err != nil {
		t.Fatal(err)
	}
	_, cl, err := c.MediumNodes()
	if err != nil {
		t.Fatal(err)
	}
	if !(cl.Sizes[1] > cl.Sizes[0] && cl.Sizes[1] > cl.Sizes[2]) {
		t.Errorf("medium cluster not the largest: %v", cl.Sizes)
	}
	ratio := float64(cl.Sizes[1]) / 600
	if ratio < 0.35 || ratio > 0.6 {
		t.Errorf("medium fraction %v far from the paper's 918/2000", ratio)
	}
}

// Headline magnitudes at reduced scale: time savings in the mid-single
// digits, energy near ten percent — the paper's 7%/11% scale.
func TestPaperHeadlineScale(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end grid in -short mode")
	}
	mix := workload.HighImbalance().Scaled(32)
	r, _ := paperEnv(t, []workload.Mix{mix}, mix.TotalNodes())
	mr, err := r.RunMix(context.Background(), mix)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	bestE := 0.0
	for _, sv := range mr.Savings {
		for _, s := range sv {
			best = math.Max(best, s.Time)
			bestE = math.Max(bestE, s.Energy)
		}
	}
	if best < 0.03 || best > 0.20 {
		t.Errorf("peak time savings %v outside the paper's scale", best)
	}
	if bestE < 0.05 || bestE > 0.25 {
		t.Errorf("peak energy savings %v outside the paper's scale", bestE)
	}
}
