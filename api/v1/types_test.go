package apiv1

import (
	"encoding/json"
	"reflect"
	"testing"
)

// golden pairs a populated wire value with its pinned encoding. The
// encodings are the v1 contract: a diff here is a wire-format change and
// must not happen within v1 (additive fields excepted).
var golden = []struct {
	name string
	val  any
	json string
}{
	{
		"Error",
		&Error{Code: CodeTenantQuotaExceeded, Message: "job j demands 700 W against tenant acme quota 500 W"},
		`{"code":"tenant_quota_exceeded","message":"job j demands 700 W against tenant acme quota 500 W"}`,
	},
	{
		"WorkloadSpec",
		&WorkloadSpec{Intensity: 8, Vector: "ymm", WaitingPct: 50, Imbalance: 2},
		`{"intensity":8,"vector":"ymm","waiting_pct":50,"imbalance":2}`,
	},
	{
		"WorkloadSpec_zero_optionals",
		&WorkloadSpec{Intensity: 0.25, Vector: "scalar", Imbalance: 1},
		`{"intensity":0.25,"vector":"scalar","imbalance":1}`,
	},
	{
		"SubmitRequest",
		&SubmitRequest{Instance: "main", JobID: "ext00001", Tenant: "acme",
			Workload: WorkloadSpec{Intensity: 8, Vector: "ymm", Imbalance: 1},
			Nodes:    2, Iterations: 5000, AtNs: 60000000000},
		`{"instance":"main","job_id":"ext00001","tenant":"acme","workload":{"intensity":8,"vector":"ymm","imbalance":1},"nodes":2,"iterations":5000,"at_ns":60000000000}`,
	},
	{
		"SubmitResponse",
		&SubmitResponse{JobID: "ext00001", State: "queued", NowNs: 1500000000},
		`{"job_id":"ext00001","state":"queued","now_ns":1500000000}`,
	},
	{
		"JobStatus",
		&JobStatus{ID: "ext00001", Tenant: "acme", State: "running", Nodes: 2,
			Iterations: 5000, Remaining: 1200, SubmittedAtNs: 1000000000,
			StartedAtNs: 2000000000, Preemptions: 1, Resumes: 1},
		`{"id":"ext00001","tenant":"acme","state":"running","nodes":2,"iterations":5000,"remaining":1200,"submitted_at_ns":1000000000,"started_at_ns":2000000000,"preemptions":1,"resumes":1}`,
	},
	{
		"TenantStatus",
		&TenantStatus{Name: "acme", QuotaWatts: 500, CommittedWatts: 470.5},
		`{"name":"acme","quota_watts":500,"committed_watts":470.5}`,
	},
	{
		"TenantQuotaRequest",
		&TenantQuotaRequest{Tenant: "acme", QuotaWatts: 500},
		`{"tenant":"acme","quota_watts":500}`,
	},
	{
		"InstanceStatus",
		&InstanceStatus{Name: "main", State: "running", NowNs: 300000000000,
			HorizonNs: 3600000000000, SpeedupX: 60, BudgetWatts: 2000,
			CommittedWatts: 1400, Nodes: 10, FreeNodes: 4, QueuedJobs: 1,
			RunningJobs: 3, Submitted: 7, Started: 5, Completed: 2, Preempted: 1,
			BudgetChanges: 2,
			Tenants:       []TenantStatus{{Name: "acme", QuotaWatts: 500, CommittedWatts: 470}},
			LastPowerWatts: 1350.25, LastSampleNs: 300000000000},
		`{"name":"main","state":"running","now_ns":300000000000,"horizon_ns":3600000000000,"speedup_x":60,"budget_watts":2000,"committed_watts":1400,"nodes":10,"free_nodes":4,"queued_jobs":1,"running_jobs":3,"submitted":7,"started":5,"completed":2,"preempted":1,"budget_changes":2,"tenants":[{"name":"acme","quota_watts":500,"committed_watts":470}],"last_power_watts":1350.25,"last_sample_ns":300000000000}`,
	},
	{
		"BudgetSwapRequest",
		&BudgetSwapRequest{Instance: "main", BudgetWatts: 1000, AtNs: 600000000000},
		`{"instance":"main","budget_watts":1000,"at_ns":600000000000}`,
	},
	{
		"BudgetSwapResponse",
		&BudgetSwapResponse{BudgetWatts: 1000, AtNs: 600000000000},
		`{"budget_watts":1000,"at_ns":600000000000}`,
	},
	{
		"PolicySwapRequest",
		&PolicySwapRequest{Policy: "mixed-adaptive"},
		`{"policy":"mixed-adaptive"}`,
	},
	{
		"PolicyListResponse",
		&PolicyListResponse{Policies: []string{"adaptive", "static"}, Active: "static"},
		`{"policies":["adaptive","static"],"active":"static"}`,
	},
	{
		"TelemetryFrame",
		&TelemetryFrame{AtNs: 60000000000, PowerWatts: 1875.5, BudgetWatts: 2000,
			Running: 4, Queued: 2, Completed: 9, Preempted: 1},
		`{"at_ns":60000000000,"power_watts":1875.5,"budget_watts":2000,"running":4,"queued":2,"completed":9,"preempted":1}`,
	},
	{
		"EventFrame",
		&EventFrame{Seq: 42, VtNs: 60000000000, Type: "job_preempted",
			Layer: "sim", Scope: "job00007", Value: 900, Aux: 100},
		`{"seq":42,"vt_ns":60000000000,"type":"job_preempted","layer":"sim","scope":"job00007","value":900,"aux":100}`,
	},
}

// TestGoldenRoundTrips pins every wire type's encoding and proves decode
// inverts encode.
func TestGoldenRoundTrips(t *testing.T) {
	for _, g := range golden {
		t.Run(g.name, func(t *testing.T) {
			enc, err := json.Marshal(g.val)
			if err != nil {
				t.Fatal(err)
			}
			if string(enc) != g.json {
				t.Errorf("encoding drifted:\n got  %s\n want %s", enc, g.json)
			}
			back := reflect.New(reflect.TypeOf(g.val).Elem()).Interface()
			if err := json.Unmarshal([]byte(g.json), back); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(back, g.val) {
				t.Errorf("decode did not invert encode:\n got  %+v\n want %+v", back, g.val)
			}
		})
	}
}

// TestUnknownFieldTolerance is the forward-compatibility pin: a v1 client
// must survive additive server changes, so decoding a payload carrying
// fields this version does not know must succeed and fill the known ones.
func TestUnknownFieldTolerance(t *testing.T) {
	payload := `{
		"job_id": "ext00009", "state": "running", "now_ns": 5,
		"added_in_v1_9": {"nested": [1, 2, 3]},
		"another_future_field": "ignored"
	}`
	var resp SubmitResponse
	if err := json.Unmarshal([]byte(payload), &resp); err != nil {
		t.Fatalf("unknown fields broke decoding: %v", err)
	}
	if resp.JobID != "ext00009" || resp.State != "running" || resp.NowNs != 5 {
		t.Errorf("known fields lost next to unknown ones: %+v", resp)
	}

	for _, g := range golden {
		// Splice a future field into every golden payload.
		spliced := `{"future_field_xyz": true,` + g.json[1:]
		back := reflect.New(reflect.TypeOf(g.val).Elem()).Interface()
		if err := json.Unmarshal([]byte(spliced), back); err != nil {
			t.Errorf("%s: unknown field broke decoding: %v", g.name, err)
		}
	}
}
