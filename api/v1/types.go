// Package apiv1 is powerstackd's versioned wire surface: the typed
// request/response bodies of every /v1 endpoint, deliberately decoupled
// from the internal simulation types. Nothing here imports an internal
// package — external clients (cmd/powerload, curl consumers, future SDKs)
// can depend on these shapes without reaching into internal/, and the
// service layer owns the conversions.
//
// Versioning contract: within v1, fields are only ever added, never
// renamed, retyped, or removed, and clients must ignore fields they do not
// know (Go's encoding/json does this by default; the tolerance test in
// types_test.go pins it). Durations and timestamps travel as integer
// nanoseconds on the virtual timeline (`..._ns`), powers as float watts
// (`..._watts`) — the run's virtual time zero is instant 0.
package apiv1

// Version is the wire-format version this package describes; it prefixes
// every route ("/v1/...").
const Version = "v1"

// Error is the body of every non-2xx response.
type Error struct {
	// Code is a stable machine-readable slug ("tenant_quota_exceeded",
	// "budget_infeasible", "not_found", "bad_request", "instance_closed").
	Code string `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
}

// Stable error codes.
const (
	CodeBadRequest          = "bad_request"
	CodeNotFound            = "not_found"
	CodeTenantQuotaExceeded = "tenant_quota_exceeded"
	CodeBudgetInfeasible    = "budget_infeasible"
	CodeNotCharacterized    = "not_characterized"
	CodeInsufficientNodes   = "insufficient_nodes"
	CodeDuplicateJob        = "duplicate_job"
	CodeInstanceClosed      = "instance_closed"
	CodeInternal            = "internal"
)

// WorkloadSpec names a kernel configuration the facility's
// characterization database must know.
type WorkloadSpec struct {
	// Intensity is the arithmetic intensity knob (FLOPs per byte).
	Intensity float64 `json:"intensity"`
	// Vector is the ISA width: "scalar", "xmm", or "ymm".
	Vector string `json:"vector"`
	// WaitingPct is the blocked-time percentage (0, 25, 50, or 75).
	WaitingPct int `json:"waiting_pct,omitempty"`
	// Imbalance is the cross-rank work skew factor (>= 1).
	Imbalance float64 `json:"imbalance"`
}

// SubmitRequest is POST /v1/submit: one job for a hosted instance.
type SubmitRequest struct {
	// Instance targets a hosted instance; empty selects the daemon's
	// default instance.
	Instance string `json:"instance,omitempty"`
	// JobID optionally names the job; empty lets the server generate one.
	JobID string `json:"job_id,omitempty"`
	// Tenant is the submitting tenant; empty is the default tenant.
	Tenant string `json:"tenant,omitempty"`
	// Workload, Nodes, and Iterations shape the job.
	Workload   WorkloadSpec `json:"workload"`
	Nodes      int          `json:"nodes"`
	Iterations int          `json:"iterations"`
	// AtNs optionally defers the submission to a virtual instant; zero or
	// past submits now.
	AtNs int64 `json:"at_ns,omitempty"`
}

// SubmitResponse acknowledges an accepted submission.
type SubmitResponse struct {
	JobID string `json:"job_id"`
	// State is the job's state at acceptance ("queued", "running", or
	// "scheduled" for deferred submissions).
	State string `json:"state"`
	// NowNs is the instance's virtual time at acceptance.
	NowNs int64 `json:"now_ns"`
}

// JobStatus is one job's lifecycle record (GET /v1/jobs/{id}, and the
// elements of GET /v1/jobs).
type JobStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	// State is "scheduled", "queued", "running", "completed", "killed",
	// or "rejected".
	State      string `json:"state"`
	Nodes      int    `json:"nodes"`
	Iterations int    `json:"iterations"`
	Remaining  int    `json:"remaining"`
	// SubmittedAtNs/StartedAtNs/FinishedAtNs are virtual instants; zero
	// means "not yet".
	SubmittedAtNs int64 `json:"submitted_at_ns"`
	StartedAtNs   int64 `json:"started_at_ns,omitempty"`
	FinishedAtNs  int64 `json:"finished_at_ns,omitempty"`
	Preemptions   int   `json:"preemptions,omitempty"`
	Requeues      int   `json:"requeues,omitempty"`
	Resumes       int   `json:"resumes,omitempty"`
}

// TenantStatus is one tenant's admission partition (GET /v1/tenants).
type TenantStatus struct {
	Name           string  `json:"name"`
	QuotaWatts     float64 `json:"quota_watts"`
	CommittedWatts float64 `json:"committed_watts"`
}

// TenantQuotaRequest is POST /v1/tenants: install (or remove, with zero
// quota) a tenant's power partition.
type TenantQuotaRequest struct {
	Instance   string  `json:"instance,omitempty"`
	Tenant     string  `json:"tenant"`
	QuotaWatts float64 `json:"quota_watts"`
}

// InstanceStatus is a hosted instance's live snapshot
// (GET /v1/instances/{name}).
type InstanceStatus struct {
	Name string `json:"name"`
	// State is "new", "running", "paused", or "closed".
	State string `json:"state"`
	// NowNs and HorizonNs delimit virtual time; SpeedupX is the pacer's
	// virtual-to-wall ratio.
	NowNs     int64   `json:"now_ns"`
	HorizonNs int64   `json:"horizon_ns"`
	SpeedupX  float64 `json:"speedup_x,omitempty"`
	// BudgetWatts is the budget in force; CommittedWatts the admitted
	// demand against it.
	BudgetWatts    float64 `json:"budget_watts"`
	CommittedWatts float64 `json:"committed_watts"`
	Nodes          int     `json:"nodes"`
	FreeNodes      int     `json:"free_nodes"`
	QueuedJobs     int     `json:"queued_jobs"`
	RunningJobs    int     `json:"running_jobs"`
	// Lifecycle counters for the run so far.
	Submitted     int `json:"submitted"`
	Started       int `json:"started"`
	Completed     int `json:"completed"`
	Rejected      int `json:"rejected,omitempty"`
	Preempted     int `json:"preempted,omitempty"`
	Killed        int `json:"killed,omitempty"`
	Resumed       int `json:"resumed,omitempty"`
	Requeued      int `json:"requeued,omitempty"`
	BudgetChanges int `json:"budget_changes,omitempty"`
	// Tenants lists the quota partitions.
	Tenants []TenantStatus `json:"tenants,omitempty"`
	// LastPowerWatts/LastSampleNs are the newest telemetry sample.
	LastPowerWatts float64 `json:"last_power_watts,omitempty"`
	LastSampleNs   int64   `json:"last_sample_ns,omitempty"`
}

// BudgetSwapRequest is POST /v1/budget: a live facility-budget step. It
// lands on the instance's budget timeline exactly as a configured
// BudgetStep would — including the emergency shed when the new budget
// strands committed power.
type BudgetSwapRequest struct {
	Instance    string  `json:"instance,omitempty"`
	BudgetWatts float64 `json:"budget_watts"`
	// AtNs schedules the step at a virtual instant; zero or past applies
	// it now.
	AtNs int64 `json:"at_ns,omitempty"`
}

// BudgetSwapResponse acknowledges a scheduled budget step.
type BudgetSwapResponse struct {
	BudgetWatts float64 `json:"budget_watts"`
	// AtNs is the resolved effective instant (clamped to now).
	AtNs int64 `json:"at_ns"`
}

// PolicySwapRequest is POST /v1/policy: swap the power-distribution
// policy live.
type PolicySwapRequest struct {
	Instance string `json:"instance,omitempty"`
	// Policy names a registered policy ("static", "adaptive",
	// "mixed-adaptive", ...; GET /v1/policies lists them).
	Policy string `json:"policy"`
}

// PolicyListResponse is GET /v1/policies.
type PolicyListResponse struct {
	Policies []string `json:"policies"`
	// Active is the targeted instance's current policy name.
	Active string `json:"active,omitempty"`
}

// TelemetryFrame is one SSE frame of GET /v1/stream/telemetry.
type TelemetryFrame struct {
	// AtNs is the virtual instant of the frame.
	AtNs int64 `json:"at_ns"`
	// PowerWatts is facility power at the newest sample; BudgetWatts the
	// budget in force.
	PowerWatts  float64 `json:"power_watts"`
	BudgetWatts float64 `json:"budget_watts"`
	Running     int     `json:"running"`
	Queued      int     `json:"queued"`
	Completed   int     `json:"completed"`
	Preempted   int     `json:"preempted,omitempty"`
	Killed      int     `json:"killed,omitempty"`
}

// EventFrame is one SSE frame of GET /v1/stream/events: a journaled
// decision translated to wire form. VtNs carries the virtual timestamp;
// the remaining fields mirror the journal's flat schema.
type EventFrame struct {
	Seq   uint64  `json:"seq"`
	VtNs  int64   `json:"vt_ns"`
	Type  string  `json:"type"`
	Layer string  `json:"layer,omitempty"`
	Scope string  `json:"scope,omitempty"`
	Host  string  `json:"host,omitempty"`
	Value float64 `json:"value,omitempty"`
	Aux   float64 `json:"aux,omitempty"`
}
