// Onlinecoord: the paper's future work, running — an execution-time
// coordination protocol between per-job runtimes and the resource manager.
// No pre-characterization: each job's balancer harvests slack power during
// execution and *releases it upward*; every iteration the resource manager
// renegotiates job budgets from the runtimes' Request messages and steers
// the surplus to the job that can still convert power into speed.
//
// The demo runs an asymmetric pair — a waiting-heavy job that frees more
// power than its own critical hosts can absorb, next to a power-bound
// compute job — once with the protocol off (each job keeps its uniform
// share: the online JobAdaptive) and once with it on (the online
// MixedAdaptive).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"powerstack/internal/bsp"
	"powerstack/internal/cluster"
	"powerstack/internal/coordinator"
	"powerstack/internal/cpumodel"
	"powerstack/internal/kernel"
	"powerstack/internal/node"
	"powerstack/internal/units"
)

func main() {
	log.SetFlags(0)

	// The waiting-heavy job frees more power than its own two critical
	// hosts can absorb (they saturate at TDP); the power-bound compute
	// job next to it converts every extra watt. Only cross-job
	// coordination can connect the two.
	specs := []struct {
		cfg   kernel.Config
		nodes int
	}{
		{kernel.Config{Intensity: 4, Vector: kernel.YMM, WaitingPct: 75, Imbalance: 3}, 8},
		{kernel.Config{Intensity: 32, Vector: kernel.YMM, Imbalance: 1}, 8},
	}
	budget := 16 * 180 * units.Watt
	fmt.Printf("two jobs, 16 nodes, system budget %v (180 W/node):\n", budget)
	for _, s := range specs {
		fmt.Printf("  %2d nodes: %s\n", s.nodes, s.cfg)
	}
	fmt.Println()

	var results [2]coordinator.Result
	for i, share := range []bool{false, true} {
		mode := "protocol OFF (jobs keep their uniform share)"
		if share {
			mode = "protocol ON  (Request/Grant renegotiation every iteration)"
		}
		res := run(specs, budget, share)
		results[i] = res
		fmt.Printf("%s\n", mode)
		fmt.Printf("  elapsed %v   energy %v   mean power %v (%.1f%% of budget)\n",
			res.Elapsed.Round(time.Millisecond), res.TotalEnergy, res.MeanPower,
			100*res.MeanPower.Watts()/budget.Watts())
		for id, gs := range res.GrantHistory {
			if len(gs) == 0 {
				continue
			}
			fmt.Printf("  job %-18s budget %6.0f W -> %6.0f W over %d protocol rounds\n",
				id, gs[0].Watts(), gs[len(gs)-1].Watts(), len(gs))
		}
		fmt.Println()
	}

	dt := 100 * (1 - results[1].Elapsed.Seconds()/results[0].Elapsed.Seconds())
	de := 100 * (1 - results[1].TotalEnergy.Joules()/results[0].TotalEnergy.Joules())
	fmt.Printf("protocol effect: %+.2f%% time, %+.2f%% energy — with no pre-characterization.\n\n", dt, de)
	fmt.Println("The grants show the waiting-heavy job's surplus crossing the job boundary")
	fmt.Println("into the power-bound compute job at execution time — the coordination the")
	fmt.Println("paper proposes standardizing between resource managers and job runtimes.")
	fmt.Println("(The offline MixedAdaptive policy of cmd/experiments reaches the same")
	fmt.Println("steady state from pre-characterization; the protocol gets there online.)")
}

func run(specs []struct {
	cfg   kernel.Config
	nodes int
}, budget units.Power, share bool) coordinator.Result {
	total := 0
	for _, s := range specs {
		total += s.nodes
	}
	c, err := cluster.New(total, cpumodel.Quartz(), cpumodel.QuartzVariation(), 21)
	if err != nil {
		log.Fatal(err)
	}
	pool := c.Nodes()
	var jobs []*bsp.Job
	for i, s := range specs {
		var alloc []*node.Node
		alloc, pool = pool[:s.nodes], pool[s.nodes:]
		j, err := bsp.NewJob(s.cfg.Name(), s.cfg, alloc, uint64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		j.NoiseSigma = 0 // deterministic comparison
		jobs = append(jobs, j)
	}
	coord, err := coordinator.New(budget, jobs, share)
	if err != nil {
		log.Fatal(err)
	}
	res, err := coord.Run(context.Background(), 80)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
