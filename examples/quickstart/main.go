// Quickstart: build a simulated Quartz-class system, characterize one
// synthetic workload, and evaluate the paper's five power-management
// policies on a small mix — the minimal end-to-end tour of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"powerstack"
	"powerstack/internal/kernel"
	"powerstack/internal/workload"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// A 40-node system: 8 nodes reserved for characterization runs, 32
	// for experiments.
	sys, err := powerstack.NewSystem(powerstack.Options{ClusterSize: 40, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// One bulk-synchronous workload: compute intensity 8 FLOPs/byte
	// (the platform's power-hungriest point), AVX2 vectors, half the
	// ranks waiting at barriers behind a 3x-imbalanced critical path.
	cfg := powerstack.KernelConfig{
		Intensity:  8,
		Vector:     kernel.YMM,
		WaitingPct: 50,
		Imbalance:  3,
	}
	fmt.Printf("workload: %s\n", cfg)

	// Characterize it: a GEOPM monitor run (maximum power) and a power
	// balancer run (minimum needed power).
	if err := sys.Characterize(ctx, []powerstack.KernelConfig{cfg}, powerstack.QuickCharacterization()); err != nil {
		log.Fatal(err)
	}
	entry, _ := sys.DB.Get(cfg)
	fmt.Printf("uncapped power:  %v per node (monitor agent)\n", entry.MonitorHostPower)
	fmt.Printf("balanced power:  %v per node (power balancer)\n", entry.BalancerHostPower)
	fmt.Printf("needed power:    critical hosts %v, waiting hosts %v\n\n",
		entry.NeededCritical, entry.NeededWaiting)

	// Run a two-job mix of this workload under every policy at the three
	// Table III budgets.
	mix := workload.Mix{Name: "quickstart", Jobs: []workload.JobSpec{
		{ID: "job-a", Config: cfg, Nodes: 16},
		{ID: "job-b", Config: cfg, Nodes: 16},
	}}
	result, err := sys.RunMix(ctx, mix, 30)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("policy comparison (ideal budget):")
	for _, p := range []string{"StaticCaps", "MinimizeWaste", "JobAdaptive", "MixedAdaptive"} {
		cell := result.Cells["ideal"][p]
		fmt.Printf("  %-15s system time %8v   energy %10v   %5.1f%% of budget\n",
			p, cell.SystemTime.Round(1e6), cell.TotalEnergy, 100*cell.Utilization)
	}
	fmt.Println("\nsavings vs StaticCaps (ideal budget):")
	for _, p := range []string{"MinimizeWaste", "JobAdaptive", "MixedAdaptive"} {
		s := result.Savings["ideal"][p]
		fmt.Printf("  %-15s time %+6.2f%%   energy %+6.2f%%   EDP %+6.2f%%   FLOPS/W %+6.2f%%\n",
			p, 100*s.Time, 100*s.Energy, 100*s.EDP, 100*s.FlopsPerW)
	}
}
