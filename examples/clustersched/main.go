// Clustersched: the full system-level story — a cluster running the
// WastefulPower mix of Table II under all five Section III policies at the
// three Table III budgets, reproducing the Figure 7/8 comparison at demo
// scale. This is the scenario the paper's introduction motivates: a
// power-limited site choosing between system-aware, application-aware, and
// integrated power management.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"powerstack"
	"powerstack/internal/report"
	"powerstack/internal/workload"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// 72 experiment nodes + 8 characterization nodes.
	sys, err := powerstack.NewSystem(powerstack.Options{ClusterSize: 80, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// The WastefulPower mix: nine jobs whose waiting ranks burn power at
	// barriers — the best case for the paper's MixedAdaptive policy.
	mix := workload.WastefulPower().Scaled(72)
	fmt.Printf("mix %s: %d jobs, %d nodes\n", mix.Name, len(mix.Jobs), mix.TotalNodes())
	for _, j := range mix.Jobs {
		fmt.Printf("  %-28s %s\n", j.ID, j.Config)
	}

	start := time.Now()
	if err := sys.CharacterizeMixes(ctx, []powerstack.Mix{mix}, powerstack.QuickCharacterization()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncharacterized %d configurations in %v\n", sys.DB.Len(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	result, err := sys.RunMix(ctx, mix, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated 3 budgets x 5 policies in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Figure 7 panel: power utilization per policy and budget.
	fmt.Printf("budgets: min %v, ideal %v, max %v\n\n", result.Budgets.Min, result.Budgets.Ideal, result.Budgets.Max)
	for _, lvl := range []string{"min", "ideal", "max"} {
		chart := report.BarChart{
			Title: fmt.Sprintf("power used at the %s budget (%% of budget; >100%% = overrun)", lvl),
			Unit:  "%", Scale: 150, Width: 40,
		}
		for _, p := range []string{"Precharacterized", "StaticCaps", "MinimizeWaste", "JobAdaptive", "MixedAdaptive"} {
			chart.Add(p, 100*result.Cells[lvl][p].Utilization)
		}
		fmt.Println(chart.String())
	}

	// Figure 8 panel: savings against StaticCaps.
	tb := report.NewTable("savings vs StaticCaps", "Budget", "Policy", "Time", "Energy", "EDP", "FLOPS/W")
	for _, lvl := range []string{"min", "ideal", "max"} {
		for _, p := range []string{"MinimizeWaste", "JobAdaptive", "MixedAdaptive"} {
			s := result.Savings[lvl][p]
			tb.AddRow(lvl, p,
				fmt.Sprintf("%+6.2f%% ±%.2f", 100*s.Time, 100*s.TimeCI),
				fmt.Sprintf("%+6.2f%% ±%.2f", 100*s.Energy, 100*s.EnergyCI),
				fmt.Sprintf("%+6.2f%%", 100*s.EDP),
				fmt.Sprintf("%+6.2f%%", 100*s.FlopsPerW))
		}
	}
	fmt.Println(tb.String())

	fmt.Println("Takeaway: the integrated MixedAdaptive policy matches or beats the")
	fmt.Println("single-layer policies across every budget — application awareness")
	fmt.Println("decides *how little* power each host needs; system awareness decides")
	fmt.Println("*where* the freed power helps most.")
}
