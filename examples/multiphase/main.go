// Multiphase: the paper's future-work scenario of applications whose
// design characteristics change between phases. One job alternates between
// a balanced compute phase and an imbalanced memory phase; the GEOPM power
// balancer must harvest power in the imbalanced phase and hand it back the
// moment the balanced phase resumes.
//
// Watch the per-phase behavior: iteration times, power, and how quickly the
// balancer re-adapts at each boundary (its MinPowerFraction headroom guard
// bounds how deep a host can be parked, so re-entry takes only a few
// control intervals).
package main

import (
	"fmt"
	"log"
	"time"

	"powerstack/internal/bsp"
	"powerstack/internal/cluster"
	"powerstack/internal/cpumodel"
	"powerstack/internal/geopm"
	"powerstack/internal/kernel"
	"powerstack/internal/units"
)

func main() {
	log.SetFlags(0)

	const hosts = 10
	c, err := cluster.New(hosts, cpumodel.Quartz(), cpumodel.QuartzVariation(), 5)
	if err != nil {
		log.Fatal(err)
	}

	compute := kernel.Config{Intensity: 16, Vector: kernel.YMM, Imbalance: 1}
	imbalanced := kernel.Config{Intensity: 2, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 3}
	job, err := bsp.NewJob("multiphase", compute, c.Nodes(), 5)
	if err != nil {
		log.Fatal(err)
	}
	schedule := []bsp.PhaseSegment{
		{Config: compute, Iterations: 12},
		{Config: imbalanced, Iterations: 12},
		{Config: compute, Iterations: 12},
	}
	if err := job.SetSchedule(schedule); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase schedule:")
	for i, seg := range schedule {
		fmt.Printf("  phase %d (%2d iters): %s\n", i, seg.Iterations, seg.Config)
	}

	budget := units.Power(hosts) * 215 * units.Watt
	ctl, err := geopm.NewController(job, geopm.NewPowerBalancer(), budget)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := ctl.Run(36)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\njob budget %v, power balancer agent, %d iterations\n\n", budget, rep.Iterations)
	fmt.Println("iter  phase  elapsed      note")
	for k, it := range rep.IterationTimes {
		phase := 0
		switch {
		case k >= 24:
			phase = 2
		case k >= 12:
			phase = 1
		}
		note := ""
		switch k {
		case 12:
			note = "<- imbalanced phase begins: balancer starts harvesting waiting hosts"
		case 24:
			note = "<- balanced phase resumes: parked hosts rejoin the critical path"
		}
		marker := ""
		if k == 12 || k == 24 {
			marker = "*"
		}
		fmt.Printf("%4d%1s %5d  %-11v %s\n", k, marker, phase, it.Round(100*time.Microsecond), note)
	}

	fmt.Printf("\ntotals: elapsed %v, energy %v, mean host power %.1f W\n",
		rep.Elapsed.Round(time.Millisecond), rep.TotalEnergy, rep.MeanHostPower().Watts())
	fmt.Println("\nThe balancer's converged limits after the final balanced phase show")
	fmt.Println("every host restored to service (no one left parked):")
	for _, h := range rep.Hosts {
		fmt.Printf("  %-10s limit %6.1f W   mean power %6.1f W\n",
			h.HostID, h.FinalLimit.Watts(), h.MeanPower.Watts())
	}
}
