// Faultchaos: graceful degradation under a deterministic fault plan. A
// machine-room simulation runs while nodes crash (and some are repaired),
// MSR writes fail, telemetry drops out, and one workload's
// characterization entry is corrupt — and the stack degrades instead of
// failing: crashed nodes are drained and their jobs requeued, persistently
// unwritable nodes are quarantined and replaced from the free pool, held
// telemetry samples keep the facility trace continuous, and policies fall
// back to even splits for the corrupt workload. Every injected fault and
// every degradation decision lands in the observability journal, printed
// at the end.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"powerstack"
	"powerstack/internal/kernel"
	"powerstack/internal/units"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// 32 experiment nodes + 8 characterization nodes.
	sys, err := powerstack.NewSystem(powerstack.Options{ClusterSize: 40, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Watch the drill live: the debug surface streams every injected
	// fault and recovery decision over /stream/events while the run is
	// in flight. ServeDebug enables observability as a side effect, and
	// the explicit Shutdown at the end drains any attached SSE clients
	// before the process exits.
	srv, err := sys.ServeDebug(ctx, "localhost:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("debug surface: http://%s (try /stream/events)\n", srv.Addr())
	sink := sys.Obs

	workloads := []kernel.Config{
		{Intensity: 0.25, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 8, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 16, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 2},
	}
	if err := sys.Characterize(ctx, workloads, powerstack.QuickCharacterization()); err != nil {
		log.Fatal(err)
	}

	// A deterministic chaos plan over the experiment pool: same seed,
	// same faults, same run — reproducible failure drills.
	duration := 2 * time.Hour
	var ids []string
	for _, n := range sys.Pool {
		ids = append(ids, n.ID)
	}
	sys.Faults = powerstack.GenerateFaults(ids, powerstack.FaultGenOptions{
		Seed:           42,
		Crashes:        2,
		RepairFraction: 0.5,
		MSRWriteFaults: 2,
		Dropouts:       3,
		Horizon:        duration,
		CorruptConfigs: []string{workloads[2].Name()},
	})
	fmt.Printf("fault plan: %d injections over %v\n", len(sys.Faults.Injections), duration)
	for _, in := range sys.Faults.Injections {
		fmt.Printf("  %-18s node=%-10s config=%s\n", in.Kind, in.Node, in.Config)
	}

	res, err := sys.RunFacility(ctx, powerstack.FacilityConfig{
		SystemBudget:     units.Power(len(sys.Pool)) * 200 * units.Watt,
		MeanInterarrival: 90 * time.Second,
		MinJobIterations: 2000,
		MaxJobIterations: 10000,
		JobSizes:         []int{2, 4, 8},
		Workloads:        workloads,
		Duration:         duration,
		Tick:             time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\njobs: %d submitted, %d started, %d completed, %d requeued after crashes\n",
		res.Submitted, res.Started, res.Completed, res.Requeued)
	fmt.Printf("nodes: %d quarantined, %d rejoined after repair\n", res.Quarantined, res.Rejoined)
	fmt.Printf("power: mean %v, peak %v over %d samples\n\n", res.MeanPower, res.PeakPower, len(res.Trace))

	fmt.Println("degradation journal (fault and recovery decisions):")
	counts := map[string]int{}
	for _, ev := range sink.Journal.Snapshot() {
		counts[string(ev.Type)]++
	}
	for _, t := range []string{
		"fault_injected", "node_quarantined", "node_rejoined", "job_requeued",
		"cap_retry", "policy_fallback", "telemetry_hold",
	} {
		if counts[t] > 0 {
			fmt.Printf("  %-18s x%d\n", t, counts[t])
		}
	}

	drain, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(drain); err != nil {
		log.Printf("debug drain: %v", err)
	}
}
