// Jobruntime: watch the GEOPM-style runtime manage one imbalanced
// bulk-synchronous job under three agents — monitor (observe only),
// power governor (uniform caps), and power balancer (shift power to the
// critical path) — and see the Figure 2 iteration anatomy up close.
//
// The example also runs the *real* compute kernel (an FMA/load loop with a
// controllable FLOPs-per-byte ratio) on the local machine, demonstrating
// that the microbenchmark is executable, not just modeled.
package main

import (
	"fmt"
	"log"
	"time"

	"powerstack/internal/bsp"
	"powerstack/internal/cluster"
	"powerstack/internal/cpumodel"
	"powerstack/internal/geopm"
	"powerstack/internal/kernel"
	"powerstack/internal/node"
	"powerstack/internal/units"
)

func main() {
	log.SetFlags(0)

	// --- Part 1: the real kernel, on this machine -----------------------
	fmt.Println("part 1: executing the synthetic kernel locally")
	buf := kernel.MakeBuffer(kernel.DefaultBufferElems)
	var sink float64
	for _, intensity := range []float64{0.25, 8, 32} {
		cfg := kernel.Config{Intensity: intensity, Vector: kernel.YMM, Imbalance: 1}
		start := time.Now()
		sink += kernel.Run(cfg, buf)
		elapsed := time.Since(start)
		bytes := float64(len(buf) * 8)
		flops := intensity * bytes
		fmt.Printf("  intensity %5.2f FLOPs/B: %8v  (%.2f GB/s streamed, %.2f GFLOPS)\n",
			intensity, elapsed.Round(time.Microsecond),
			bytes/elapsed.Seconds()/1e9, flops/elapsed.Seconds()/1e9)
	}
	_ = sink

	// --- Part 2: the runtime on the simulated cluster -------------------
	fmt.Println("\npart 2: one imbalanced job under three GEOPM agents")
	cfg := kernel.Config{Intensity: 16, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 3}
	fmt.Printf("workload: %s\n\n", cfg)

	budgetPerHost := 200 * units.Watt
	const hosts = 12
	agents := []geopm.Agent{geopm.Monitor{}, geopm.PowerGovernor{}, geopm.NewPowerBalancer()}
	for _, agent := range agents {
		rep := runUnder(agent, cfg, hosts, units.Power(hosts)*budgetPerHost)
		fmt.Printf("agent %-15s  elapsed %9v  energy %10v  mean power %7.1f W/host  converged at iter %d\n",
			rep.Agent, rep.Elapsed.Round(time.Millisecond), rep.TotalEnergy,
			rep.MeanHostPower().Watts(), rep.ConvergedAt)
		if rep.Agent == "power_balancer" {
			fmt.Println("  converged per-host limits (critical hosts first):")
			for _, h := range rep.Hosts {
				fmt.Printf("    %-10s %-8s limit %6.1f W  mean power %6.1f W  work time %v\n",
					h.HostID, h.Role, h.FinalLimit.Watts(), h.MeanPower.Watts(),
					h.MeanWorkTime.Round(time.Microsecond))
			}
		}
	}
	fmt.Println("\nThe balancer lowers limits on waiting hosts (no critical-path impact)")
	fmt.Println("and grants the freed power to the critical hosts, shortening every")
	fmt.Println("iteration versus the uniform governor at the same job budget.")
}

// runUnder builds a fresh job on fresh nodes and runs it under the agent.
func runUnder(agent geopm.Agent, cfg kernel.Config, hosts int, budget units.Power) geopm.Report {
	c, err := cluster.New(hosts, cpumodel.Quartz(), cpumodel.QuartzVariation(), 7)
	if err != nil {
		log.Fatal(err)
	}
	job, err := bsp.NewJob("imbalanced", cfg, c.Nodes(), 7)
	if err != nil {
		log.Fatal(err)
	}
	if agent.Name() == "monitor" {
		budget = units.Power(hosts) * node.SocketsPerNode * cpumodel.Quartz().TDP
	}
	ctl, err := geopm.NewController(job, agent, budget)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := ctl.Run(60)
	if err != nil {
		log.Fatal(err)
	}
	return rep
}
