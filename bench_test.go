// Benchmarks regenerating every table and figure of the paper, one bench
// per artifact. The figure benches run reduced-scale versions of the
// corresponding experiment (the cmd/ tools run them at paper scale); the
// kernel benches execute the real compute loop. Run with:
//
//	go test -bench=. -benchmem
package powerstack

import (
	"context"
	"testing"

	"powerstack/internal/charz"
	"powerstack/internal/cluster"
	"powerstack/internal/cpumodel"
	"powerstack/internal/kernel"
	"powerstack/internal/node"
	"powerstack/internal/policy"
	"powerstack/internal/roofline"
	"powerstack/internal/sim"
	"powerstack/internal/stats"
	"powerstack/internal/trace"
	"powerstack/internal/units"
	"powerstack/internal/workload"
)

// BenchmarkFig1FacilityTrace generates the year-long facility power trace
// of Figure 1 (hourly samples, one-day moving average).
func BenchmarkFig1FacilityTrace(b *testing.B) {
	cfg := trace.QuartzYear()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := trace.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if tr.MeanPower() <= 0 {
			b.Fatal("degenerate trace")
		}
	}
}

// BenchmarkFig3Roofline evaluates the roofline model across the Figure 3
// kernel sweep for all vector widths.
func BenchmarkFig3Roofline(b *testing.B) {
	plat := roofline.QuartzBroadwell()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, v := range kernel.Vectors() {
			pts := plat.KernelSweep(v, plat.RefFreq)
			if len(pts) == 0 {
				b.Fatal("empty sweep")
			}
		}
	}
}

// benchNodes builds a small node set once per benchmark.
func benchNodes(b *testing.B, n int) []*node.Node {
	b.Helper()
	c, err := cluster.New(n, cpumodel.Quartz(), cpumodel.QuartzVariation(), 17)
	if err != nil {
		b.Fatal(err)
	}
	return c.Nodes()
}

// BenchmarkFig4MonitorHeatmap characterizes one heatmap row (intensity 8,
// all imbalance columns) under the monitor agent.
func BenchmarkFig4MonitorHeatmap(b *testing.B) {
	nodes := benchNodes(b, 8)
	cols := kernel.HeatmapColumns()
	opt := charz.Options{MonitorIters: 10, BalancerIters: 1, Seed: 1, NoiseSigma: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, col := range cols {
			cfg := kernel.Config{Intensity: 8, Vector: kernel.YMM, WaitingPct: col.WaitingPct, Imbalance: col.Imbalance}
			e, err := charz.Characterize(cfg, nodes, opt)
			if err != nil {
				b.Fatal(err)
			}
			if e.MonitorHostPower <= 0 {
				b.Fatal("no power measured")
			}
		}
	}
}

// BenchmarkFig5BalancerHeatmap characterizes one heatmap row under the
// power balancer (the convergence-dominated pass).
func BenchmarkFig5BalancerHeatmap(b *testing.B) {
	nodes := benchNodes(b, 8)
	cols := kernel.HeatmapColumns()
	opt := charz.Options{MonitorIters: 2, BalancerIters: 40, Seed: 1, NoiseSigma: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, col := range cols {
			cfg := kernel.Config{Intensity: 8, Vector: kernel.YMM, WaitingPct: col.WaitingPct, Imbalance: col.Imbalance}
			e, err := charz.Characterize(cfg, nodes, opt)
			if err != nil {
				b.Fatal(err)
			}
			if e.BalancerHostPower <= 0 {
				b.Fatal("no power measured")
			}
		}
	}
}

// BenchmarkFig6FrequencyClusters runs the hardware-variation survey and
// k-means partition on a 500-node population.
func BenchmarkFig6FrequencyClusters(b *testing.B) {
	c, err := cluster.New(500, cpumodel.Quartz(), cpumodel.QuartzVariation(), 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		freqs, err := c.FrequencySurvey(cluster.SurveyWorkload(), cluster.SurveyCap, 1)
		if err != nil {
			b.Fatal(err)
		}
		cl, err := stats.KMeans1D(freqs, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(cl.Sizes) != 3 {
			b.Fatal("bad clustering")
		}
	}
}

// benchDB characterizes the configs of the given mixes once.
func benchDB(b *testing.B, mixes []workload.Mix) *charz.DB {
	b.Helper()
	nodes := benchNodes(b, 4)
	db := charz.NewDB()
	seen := map[string]bool{}
	for _, m := range mixes {
		for _, cfg := range m.Configs() {
			if seen[cfg.Name()] {
				continue
			}
			seen[cfg.Name()] = true
			e, err := charz.Characterize(cfg, nodes, charz.Options{MonitorIters: 5, BalancerIters: 30, Seed: 3, NoiseSigma: 0})
			if err != nil {
				b.Fatal(err)
			}
			db.Put(e)
		}
	}
	return db
}

// BenchmarkTable3Budgets computes the min/ideal/max budget selection for
// the fixed mixes from a prepared characterization database.
func BenchmarkTable3Budgets(b *testing.B) {
	mixes := []workload.Mix{workload.NeedUsedPower(), workload.HighImbalance(), workload.WastefulPower()}
	db := benchDB(b, mixes)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, m := range mixes {
			if _, err := workload.SelectBudgets(m, db); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig7PowerUtilization runs one Figure 7 cell: the WastefulPower
// mix under StaticCaps at the ideal budget.
func BenchmarkFig7PowerUtilization(b *testing.B) {
	mix := workload.WastefulPower().Scaled(27)
	db := benchDB(b, []workload.Mix{mix})
	pool := benchNodes(b, mix.TotalNodes())
	r := sim.NewRunner(pool, db)
	r.Iters = 20
	r.NoiseSigma = 0
	budgets, err := workload.SelectBudgets(mix, db)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell, err := r.RunCell(context.Background(), mix, policy.StaticCaps{}, "ideal", budgets.Ideal)
		if err != nil {
			b.Fatal(err)
		}
		if cell.Utilization <= 0 {
			b.Fatal("no utilization")
		}
	}
}

// BenchmarkFig8SavingsGrid runs one full Figure 8 mix column (three budgets
// by five policies, with savings) at reduced scale.
func BenchmarkFig8SavingsGrid(b *testing.B) {
	mix := workload.WastefulPower().Scaled(27)
	db := benchDB(b, []workload.Mix{mix})
	pool := benchNodes(b, mix.TotalNodes())
	r := sim.NewRunner(pool, db)
	r.Iters = 10
	r.NoiseSigma = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mr, err := r.RunMix(context.Background(), mix)
		if err != nil {
			b.Fatal(err)
		}
		if len(mr.Savings) != 3 {
			b.Fatal("missing savings")
		}
	}
}

// BenchmarkFig8SavingsGridParallel is BenchmarkFig8SavingsGrid with the
// mix column's 15 cells fanned out across all CPUs on cell-isolated cloned
// pools; the result is byte-identical to the sequential run.
func BenchmarkFig8SavingsGridParallel(b *testing.B) {
	mix := workload.WastefulPower().Scaled(27)
	db := benchDB(b, []workload.Mix{mix})
	pool := benchNodes(b, mix.TotalNodes())
	r := sim.NewRunner(pool, db)
	r.Iters = 10
	r.NoiseSigma = 0
	r.Parallelism = 0 // all CPUs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mr, err := r.RunMix(context.Background(), mix)
		if err != nil {
			b.Fatal(err)
		}
		if len(mr.Savings) != 3 {
			b.Fatal("missing savings")
		}
	}
}

// BenchmarkKernelCompute executes the real compute loop of the synthetic
// kernel at three intensities and all vector widths, reporting streamed
// bytes per second.
func BenchmarkKernelCompute(b *testing.B) {
	buf := kernel.MakeBuffer(1 << 18) // 2 MiB per pass
	for _, v := range kernel.Vectors() {
		for _, intensity := range []float64{0.25, 8, 32} {
			cfg := kernel.Config{Intensity: intensity, Vector: v, Imbalance: 1}
			b.Run(cfg.Name(), func(b *testing.B) {
				b.SetBytes(int64(len(buf) * 8))
				var sink float64
				for i := 0; i < b.N; i++ {
					sink += kernel.Run(cfg, buf)
				}
				if sink == 0 {
					b.Fatal("dead-code elimination")
				}
			})
		}
	}
}

// BenchmarkOnlineCoordination runs the execution-time coordination
// protocol (the paper's future work) over a small asymmetric mix.
func BenchmarkOnlineCoordination(b *testing.B) {
	mix := workload.Mix{Name: "bench-online", Jobs: []workload.JobSpec{
		{ID: "waiting", Config: kernel.Config{Intensity: 4, Vector: kernel.YMM, WaitingPct: 75, Imbalance: 3}, Nodes: 8},
		{ID: "bound", Config: kernel.Config{Intensity: 32, Vector: kernel.YMM, Imbalance: 1}, Nodes: 8},
	}}
	pool := benchNodes(b, mix.TotalNodes())
	r := sim.NewRunner(pool, charz.NewDB())
	r.Iters = 20
	r.NoiseSigma = 0
	budget := 16 * 180 * units.Watt
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell, err := r.RunOnlineCell(context.Background(), mix, "bench", budget)
		if err != nil {
			b.Fatal(err)
		}
		if cell.TotalEnergy <= 0 {
			b.Fatal("no energy recorded")
		}
	}
}

// BenchmarkPolicyAllocation measures the allocation latency of all five
// policies over a 900-host job set — the resource manager's critical path
// when budgets change.
func BenchmarkPolicyAllocation(b *testing.B) {
	mixes := []workload.Mix{workload.WastefulPower()}
	db := benchDB(b, mixes)
	var jobs []policy.JobInfo
	for _, js := range mixes[0].Jobs {
		e, err := db.MustGet(js.Config)
		if err != nil {
			b.Fatal(err)
		}
		info := policy.JobInfo{ID: js.ID, Char: e}
		for h := 0; h < js.Nodes; h++ {
			info.Hosts = append(info.Hosts, policy.HostInfo{Min: 136 * units.Watt, Max: 240 * units.Watt})
		}
		jobs = append(jobs, info)
	}
	sys := policy.System{Budget: 900 * 190 * units.Watt}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range policy.All() {
			if _, err := p.Allocate(sys, jobs); err != nil {
				b.Fatal(err)
			}
		}
	}
}
