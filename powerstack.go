// Package powerstack is a unified HPC power management stack: a resource
// manager with system-wide power awareness integrated with a GEOPM-style,
// application-aware job runtime, reproducing "Introducing Application
// Awareness Into a Unified Power Management Stack" (Wilson et al., IPDPS
// Workshops 2021).
//
// The package is the public facade over the internal substrates:
//
//   - a simulated msr-safe/RAPL register interface and an analytic
//     Broadwell socket power/performance model (internal/msr, internal/rapl,
//     internal/cpumodel),
//   - the synthetic compute-intensity kernel and the bulk-synchronous
//     execution engine (internal/kernel, internal/bsp),
//   - the GEOPM-style job runtime with monitor, governor, and power
//     balancer agents (internal/geopm),
//   - the characterization pipeline, resource manager, and the five
//     Section III power policies (internal/charz, internal/rm,
//     internal/policy), and
//   - the evaluation harness regenerating every table and figure
//     (internal/workload, internal/sim).
//
// # Quick start
//
//	sys, err := powerstack.NewSystem(powerstack.Options{ClusterSize: 64, Seed: 1})
//	...
//	err = sys.Characterize(cfgs, powerstack.QuickCharacterization())
//	mix := workload.WastefulPower().Scaled(40)
//	result, err := sys.RunMix(mix, 50)
//
// See examples/ for complete programs.
package powerstack

import (
	"errors"
	"fmt"
	"strings"

	"powerstack/internal/bsp"
	"powerstack/internal/charz"
	"powerstack/internal/cluster"
	"powerstack/internal/coordinator"
	"powerstack/internal/cpumodel"
	"powerstack/internal/kernel"
	"powerstack/internal/node"
	"powerstack/internal/obs"
	"powerstack/internal/policy"
	"powerstack/internal/sim"
	"powerstack/internal/stats"
	"powerstack/internal/units"
	"powerstack/internal/workload"
)

// Re-exported core types, so downstream code can work entirely through the
// facade for the common paths.
type (
	// KernelConfig is one synthetic-kernel variant (intensity, vector
	// width, waiting ranks, imbalance).
	KernelConfig = kernel.Config
	// Mix is one Table II workload mix.
	Mix = workload.Mix
	// Budgets holds the Table III min/ideal/max budgets of a mix.
	Budgets = workload.Budgets
	// Policy is a Section III power management policy.
	Policy = policy.Policy
	// CharacterizationDB stores the per-workload monitor/balancer
	// characterization.
	CharacterizationDB = charz.DB
	// Cell is one (mix, policy, budget) evaluation measurement.
	Cell = sim.Cell
	// Savings is one Figure 8 comparison against StaticCaps.
	Savings = sim.Savings
	// Grid is a full Figure 7/8 evaluation.
	Grid = sim.Grid
	// MixResult is one mix's cells and savings.
	MixResult = sim.MixResult
	// Sink is the observability sink: a metrics registry plus a bounded
	// decision-event journal. A nil *Sink is valid and free.
	Sink = obs.Sink
	// DebugServer is a running observability HTTP server.
	DebugServer = obs.Server
)

// Options configure a simulated system.
type Options struct {
	// ClusterSize is the node population to simulate (the paper surveys
	// 2000 and runs on 900 of the medium-frequency cluster). It must be
	// large enough for the mixes you plan to run plus CharNodes.
	ClusterSize int
	// Seed drives hardware-variation sampling and OS noise.
	Seed uint64
	// SelectMediumCluster applies the Figure 6 methodology (frequency
	// survey + 3-way k-means) and keeps only the medium cluster for
	// experiments, as the paper does. Requires a population large enough
	// to cluster meaningfully.
	SelectMediumCluster bool
	// CharNodes is how many nodes are reserved for characterization runs
	// (default 8; the paper uses 100 test nodes).
	CharNodes int
}

// System is a ready-to-use simulated cluster with its characterization
// database.
type System struct {
	// Cluster is the full simulated node population.
	Cluster *cluster.Cluster
	// Pool is the experiment node set (after optional medium-cluster
	// selection, minus the characterization nodes).
	Pool []*node.Node
	// CharPool is the node set reserved for characterization runs.
	CharPool []*node.Node
	// DB accumulates characterization entries.
	DB *charz.DB
	// Clustering is the Figure 6 partition when medium selection ran.
	Clustering *stats.Clustering
	// Obs is the system's observability sink after EnableObservability;
	// nil until then, which keeps every instrumented hot path free.
	Obs *obs.Sink

	seed uint64
}

// EnableObservability creates (once) the system's metrics/trace sink and
// attaches it to every node's RAPL plumbing, so subsequent Characterize,
// RunMix, Evaluate, and Coordinate calls record metrics and decision
// events. It returns the sink for export (WritePrometheus, WriteTrace).
func (s *System) EnableObservability() *obs.Sink {
	if s.Obs == nil {
		s.Obs = obs.New()
		for _, n := range s.Cluster.Nodes() {
			n.SetObs(s.Obs)
		}
	}
	return s.Obs
}

// ServeDebug enables observability and starts the debug HTTP server on
// addr, exposing /metrics (Prometheus text), /events (decision journal),
// /trace (Chrome trace JSON), and /debug/pprof. Close the returned server
// when done; use addr ":0" to pick a free port.
func (s *System) ServeDebug(addr string) (*obs.Server, error) {
	return obs.Serve(addr, s.EnableObservability())
}

// NewSystem builds a simulated Quartz-class system.
func NewSystem(opts Options) (*System, error) {
	if opts.ClusterSize <= 0 {
		return nil, errors.New("powerstack: ClusterSize must be positive")
	}
	charNodes := opts.CharNodes
	if charNodes <= 0 {
		charNodes = 8
	}
	c, err := cluster.New(opts.ClusterSize, cpumodel.Quartz(), cpumodel.QuartzVariation(), opts.Seed)
	if err != nil {
		return nil, err
	}
	sys := &System{Cluster: c, DB: charz.NewDB(), seed: opts.Seed}

	nodes := c.Nodes()
	if opts.SelectMediumCluster {
		medium, cl, err := c.MediumNodes()
		if err != nil {
			return nil, err
		}
		sys.Clustering = cl
		nodes = medium
	}
	if len(nodes) <= charNodes {
		return nil, fmt.Errorf("powerstack: %d usable nodes cannot spare %d for characterization", len(nodes), charNodes)
	}
	sys.CharPool = nodes[:charNodes]
	sys.Pool = nodes[charNodes:]
	return sys, nil
}

// QuickCharacterization returns characterization options sized for demos
// and tests (fewer iterations than the paper's runs).
func QuickCharacterization() charz.Options {
	return charz.Options{MonitorIters: 10, BalancerIters: 50, Seed: 2, NoiseSigma: -1}
}

// Characterize runs the two-pass characterization for every given config on
// the system's characterization pool, merging results into the database.
func (s *System) Characterize(configs []KernelConfig, opt charz.Options) error {
	db, err := charz.CharacterizeAll(configs, s.CharPool, opt)
	if err != nil {
		return err
	}
	for _, e := range db.Entries {
		s.DB.Put(e)
	}
	return nil
}

// CharacterizeMixes characterizes every distinct configuration the mixes
// use.
func (s *System) CharacterizeMixes(mixes []Mix, opt charz.Options) error {
	seen := map[string]bool{}
	var configs []KernelConfig
	for _, m := range mixes {
		for _, cfg := range m.Configs() {
			if !seen[cfg.Name()] {
				seen[cfg.Name()] = true
				configs = append(configs, cfg)
			}
		}
	}
	return s.Characterize(configs, opt)
}

// Runner returns an evaluation runner over the system's experiment pool.
func (s *System) Runner() *sim.Runner {
	r := sim.NewRunner(s.Pool, s.DB)
	r.Seed = s.seed + 1000
	r.Obs = s.Obs
	return r
}

// RunMix evaluates one mix across all budgets and policies.
func (s *System) RunMix(mix Mix, iters int) (MixResult, error) {
	r := s.Runner()
	r.Iters = iters
	return r.RunMix(mix)
}

// Evaluate runs the full Figure 7/8 grid over the given mixes.
func (s *System) Evaluate(mixes []Mix, iters int) (*Grid, error) {
	r := s.Runner()
	r.Iters = iters
	return r.Run(mixes)
}

// Policies returns every policy in the paper's presentation order.
func Policies() []Policy { return policy.All() }

// DynamicPolicies returns the three dynamic policies of Figure 8.
func DynamicPolicies() []Policy { return policy.Dynamic() }

// PolicyByName resolves a policy by its report name ("MixedAdaptive"),
// case-insensitively.
func PolicyByName(name string) (Policy, error) {
	for _, p := range policy.All() {
		if strings.EqualFold(p.Name(), name) {
			return p, nil
		}
	}
	return nil, fmt.Errorf("powerstack: unknown policy %q", name)
}

// Coordinate runs the mix under the execution-time coordination protocol
// (the paper's future work: no pre-characterization; job runtimes
// renegotiate budgets with the resource manager every iteration) on the
// system's experiment pool.
func (s *System) Coordinate(mix Mix, budget units.Power, iters int) (coordinator.Result, error) {
	if mix.TotalNodes() > len(s.Pool) {
		return coordinator.Result{}, fmt.Errorf("powerstack: mix needs %d nodes, pool has %d", mix.TotalNodes(), len(s.Pool))
	}
	pool := s.Pool
	var jobs []*bsp.Job
	for i, js := range mix.Jobs {
		j, err := bsp.NewJob(js.ID, js.Config, pool[:js.Nodes], s.seed+uint64(i)*31)
		if err != nil {
			return coordinator.Result{}, err
		}
		pool = pool[js.Nodes:]
		jobs = append(jobs, j)
	}
	defer func() {
		for _, j := range jobs {
			for _, n := range j.Nodes() {
				n.SetPowerLimit(n.TDP()) //nolint:errcheck // best-effort reset
			}
		}
	}()
	coord, err := coordinator.New(budget, jobs, true)
	if err != nil {
		return coordinator.Result{}, err
	}
	coord.SetObs(s.Obs)
	return coord.Run(iters)
}
