// Package powerstack is a unified HPC power management stack: a resource
// manager with system-wide power awareness integrated with a GEOPM-style,
// application-aware job runtime, reproducing "Introducing Application
// Awareness Into a Unified Power Management Stack" (Wilson et al., IPDPS
// Workshops 2021).
//
// The package is the public facade over the internal substrates:
//
//   - a simulated msr-safe/RAPL register interface and an analytic
//     Broadwell socket power/performance model (internal/msr, internal/rapl,
//     internal/cpumodel),
//   - the synthetic compute-intensity kernel and the bulk-synchronous
//     execution engine (internal/kernel, internal/bsp),
//   - the GEOPM-style job runtime with monitor, governor, and power
//     balancer agents (internal/geopm),
//   - the characterization pipeline, resource manager, and the five
//     Section III power policies (internal/charz, internal/rm,
//     internal/policy), and
//   - the evaluation harness regenerating every table and figure
//     (internal/workload, internal/sim).
//
// # Quick start
//
//	sys, err := powerstack.NewSystem(powerstack.Options{ClusterSize: 64, Seed: 1})
//	...
//	ctx := context.Background()
//	err = sys.Characterize(ctx, cfgs, powerstack.QuickCharacterization())
//	mix := workload.WastefulPower().Scaled(40)
//	result, err := sys.RunMix(ctx, mix, 50)
//
// See examples/ for complete programs.
package powerstack

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"powerstack/internal/bsp"
	"powerstack/internal/campaign"
	"powerstack/internal/charz"
	"powerstack/internal/cluster"
	"powerstack/internal/coordinator"
	"powerstack/internal/cpumodel"
	"powerstack/internal/facility"
	"powerstack/internal/fault"
	"powerstack/internal/kernel"
	"powerstack/internal/node"
	"powerstack/internal/obs"
	"powerstack/internal/policy"
	"powerstack/internal/rm"
	"powerstack/internal/sim"
	"powerstack/internal/stats"
	"powerstack/internal/units"
	"powerstack/internal/workload"
)

// Re-exported core types, so downstream code can work entirely through the
// facade for the common paths.
type (
	// KernelConfig is one synthetic-kernel variant (intensity, vector
	// width, waiting ranks, imbalance).
	KernelConfig = kernel.Config
	// Mix is one Table II workload mix.
	Mix = workload.Mix
	// Budgets holds the Table III min/ideal/max budgets of a mix.
	Budgets = workload.Budgets
	// Policy is a Section III power management policy.
	Policy = policy.Policy
	// CharacterizationDB stores the per-workload monitor/balancer
	// characterization.
	CharacterizationDB = charz.DB
	// Cell is one (mix, policy, budget) evaluation measurement.
	Cell = sim.Cell
	// Savings is one Figure 8 comparison against StaticCaps.
	Savings = sim.Savings
	// Grid is a full Figure 7/8 evaluation.
	Grid = sim.Grid
	// MixResult is one mix's cells and savings.
	MixResult = sim.MixResult
	// Sink is the observability sink: a metrics registry, a bounded
	// decision-event journal, a virtual-time span log, and a live-stream
	// broadcaster. A nil *Sink is valid and free.
	Sink = obs.Sink
	// DebugServer is a running observability HTTP server.
	DebugServer = obs.Server
	// SpanContext names a tracing span so spans opened across layers link
	// into one causal trace (campaign → scenario → facility run → replan →
	// cap write).
	SpanContext = obs.SpanContext
	// Span is an in-flight tracing span handle; nil is valid and free.
	Span = obs.Span
	// FlightRecord is a self-contained per-scenario post-mortem artifact:
	// config, seed, fault plan, metrics snapshot, journal tail, and spans.
	FlightRecord = obs.FlightRecord
	// FaultPlan is a deterministic, seed-reproducible set of fault
	// injections (MSR faults, node crashes, slow nodes, telemetry
	// dropouts, characterization corruption). Nil and empty plans inject
	// nothing.
	FaultPlan = fault.Plan
	// FaultInjection is one declarative fault of a plan.
	FaultInjection = fault.Injection
	// FaultGenOptions shape GenerateFaults.
	FaultGenOptions = fault.GenOptions
	// FacilityConfig shapes a trace-driven machine-room simulation.
	FacilityConfig = facility.Config
	// FacilityResult summarizes a facility simulation: the power trace,
	// job throughput, and fault/degradation counters.
	FacilityResult = facility.Result
	// BudgetStep is one scheduled facility-budget change of a
	// FacilityConfig.BudgetSteps timeline (demand-response windows, price
	// curves).
	BudgetStep = facility.BudgetStep
	// EmergencyPolicy selects the facility's response when a budget change
	// strands committed power above the new budget: preempt at checkpoint,
	// throttle everyone, or kill.
	EmergencyPolicy = facility.EmergencyPolicy
	// CampaignConfig shapes a multi-seed campaign: a base facility
	// configuration plus the scenario matrix swept over it.
	CampaignConfig = campaign.Config
	// CampaignReport is a campaign's deterministic output: per-scenario
	// results, per-group statistics, and policy comparisons.
	CampaignReport = campaign.Report
	// CampaignFaultPlan pairs a fault plan with its report label for the
	// campaign fault-lane axis.
	CampaignFaultPlan = campaign.NamedFaultPlan
	// CharacterizationCache memoizes characterization runs process-wide,
	// keyed by kernel config, platform, and options.
	CharacterizationCache = charz.Cache
	// CoordinationResult aggregates a Coordinate run.
	CoordinationResult = coordinator.Result
)

// Sentinel errors exposed as API: match them with errors.Is on anything
// the facade returns. Every internal wrap uses %w, so the job, node, and
// configuration context in the message never hides the category.
var (
	// ErrNotCharacterized reports a workload configuration absent from
	// the characterization database.
	ErrNotCharacterized = charz.ErrNotCharacterized
	// ErrInsufficientNodes reports a job submission larger than the node
	// pool could ever satisfy.
	ErrInsufficientNodes = rm.ErrInsufficientNodes
	// ErrNodeQuarantined reports a submission blocked only by nodes in
	// the quarantine drain set — retry after repairs rejoin them.
	ErrNodeQuarantined = rm.ErrNodeQuarantined
	// ErrBudgetInfeasible reports a job whose power demand exceeds the
	// whole system budget.
	ErrBudgetInfeasible = rm.ErrBudgetInfeasible
)

// The injectable fault classes, for hand-built plans (GenerateFaults covers
// the common randomized case).
const (
	FaultMSRWrite         = fault.MSRWriteFault
	FaultMSRRead          = fault.MSRReadFault
	FaultNodeCrash        = fault.NodeCrash
	FaultSlowNode         = fault.SlowNode
	FaultTelemetryDropout = fault.TelemetryDropout
	FaultRequestDropout   = fault.RequestDropout
	FaultCharzCorruption  = fault.CharzCorruption
	FaultBudgetDrop       = fault.BudgetDrop
)

// The budget-emergency responses, for FacilityConfig.Emergency and the
// campaign's Emergencies axis.
const (
	EmergencyPreempt  = facility.EmergencyPreempt
	EmergencyThrottle = facility.EmergencyThrottle
	EmergencyKill     = facility.EmergencyKill
)

// The facility simulation cores, for FacilityConfig.Engine: the
// discrete-event engine (the default) jumps the virtual clock between
// arrivals, completions, faults, and telemetry samples; the fixed-tick
// loop is the compatibility mode the event engine is golden-tested
// against.
const (
	FacilityEngineEvent = facility.EngineEvent
	FacilityEngineTick  = facility.EngineTick
)

// GenerateFaults builds a deterministic fault plan over the given node IDs:
// the same seed and options always yield the same plan.
func GenerateFaults(nodeIDs []string, opts FaultGenOptions) *FaultPlan {
	return fault.Generate(nodeIDs, opts)
}

// Options configure a simulated system.
type Options struct {
	// ClusterSize is the node population to simulate (the paper surveys
	// 2000 and runs on 900 of the medium-frequency cluster). It must be
	// large enough for the mixes you plan to run plus CharNodes.
	ClusterSize int
	// Seed drives hardware-variation sampling and OS noise.
	Seed uint64
	// SelectMediumCluster applies the Figure 6 methodology (frequency
	// survey + 3-way k-means) and keeps only the medium cluster for
	// experiments, as the paper does. Requires a population large enough
	// to cluster meaningfully.
	SelectMediumCluster bool
	// CharNodes is how many nodes are reserved for characterization runs
	// (default 8; the paper uses 100 test nodes).
	CharNodes int
}

// System is a ready-to-use simulated cluster with its characterization
// database.
type System struct {
	// Cluster is the full simulated node population.
	Cluster *cluster.Cluster
	// Pool is the experiment node set (after optional medium-cluster
	// selection, minus the characterization nodes).
	Pool []*node.Node
	// CharPool is the node set reserved for characterization runs.
	CharPool []*node.Node
	// DB accumulates characterization entries.
	DB *charz.DB
	// Clustering is the Figure 6 partition when medium selection ran.
	Clustering *stats.Clustering
	// Obs is the system's observability sink after EnableObservability;
	// nil until then, which keeps every instrumented hot path free.
	Obs *obs.Sink
	// Faults is an optional deterministic fault plan applied by RunMix,
	// Evaluate, and RunFacility. Nil (or empty) injects nothing and
	// reproduces the fault-free results byte for byte.
	Faults *FaultPlan

	seed uint64
}

// EnableObservability creates (once) the system's metrics/trace sink and
// attaches it to every node's RAPL plumbing, so subsequent Characterize,
// RunMix, Evaluate, and Coordinate calls record metrics and decision
// events. It returns the sink for export (WritePrometheus, WriteTrace).
func (s *System) EnableObservability() *obs.Sink {
	if s.Obs == nil {
		s.Obs = obs.New()
		for _, n := range s.Cluster.Nodes() {
			n.SetObs(s.Obs)
		}
	}
	return s.Obs
}

// ServeDebug enables observability and starts the debug HTTP server on
// addr, exposing /metrics (Prometheus text), /events (decision journal),
// /trace (Chrome trace JSON of events and spans), /spans (JSONL span log),
// /stream/events and /stream/metrics (live SSE feeds), /healthz, and
// /debug/pprof. Use addr ":0" to pick a free port and read it back with
// Addr.
//
// The returned handle's Shutdown(ctx) drains gracefully: live SSE clients
// are disconnected first, then in-flight requests finish (bounded by the
// Shutdown context). Cancelling the ctx given here triggers the same
// graceful drain, so a server tied to a signal context needs no extra
// plumbing.
func (s *System) ServeDebug(ctx context.Context, addr string) (*obs.Server, error) {
	srv, err := obs.Serve(addr, s.EnableObservability())
	if err != nil {
		return nil, err
	}
	if ctx.Done() != nil {
		go func() {
			<-ctx.Done()
			drain, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(drain) //nolint:errcheck // best-effort drain on ctx cancel
		}()
	}
	return srv, nil
}

// ReadFlightRecord parses a flight-recorder artifact written by a campaign
// with CampaignConfig.FlightDir set (see also cmd/obsdump flight).
func ReadFlightRecord(path string) (*FlightRecord, error) {
	return obs.ReadFlightFile(path)
}

// NewSystem builds a simulated Quartz-class system.
func NewSystem(opts Options) (*System, error) {
	if opts.ClusterSize <= 0 {
		return nil, errors.New("powerstack: ClusterSize must be positive")
	}
	charNodes := opts.CharNodes
	if charNodes <= 0 {
		charNodes = 8
	}
	c, err := cluster.New(opts.ClusterSize, cpumodel.Quartz(), cpumodel.QuartzVariation(), opts.Seed)
	if err != nil {
		return nil, err
	}
	sys := &System{Cluster: c, DB: charz.NewDB(), seed: opts.Seed}

	nodes := c.Nodes()
	if opts.SelectMediumCluster {
		medium, cl, err := c.MediumNodes()
		if err != nil {
			return nil, err
		}
		sys.Clustering = cl
		nodes = medium
	}
	if len(nodes) <= charNodes {
		return nil, fmt.Errorf("powerstack: %d usable nodes cannot spare %d for characterization", len(nodes), charNodes)
	}
	sys.CharPool = nodes[:charNodes]
	sys.Pool = nodes[charNodes:]
	return sys, nil
}

// QuickCharacterization returns characterization options sized for demos
// and tests (fewer iterations than the paper's runs).
func QuickCharacterization() charz.Options {
	return charz.Options{MonitorIters: 10, BalancerIters: 50, Seed: 2, NoiseSigma: -1}
}

// Characterize runs the two-pass characterization for every given config on
// the system's characterization pool, merging results into the database.
// Cancelling ctx stops between configurations with ctx's error.
func (s *System) Characterize(ctx context.Context, configs []KernelConfig, opt charz.Options) error {
	db, err := charz.CharacterizeAll(ctx, configs, s.CharPool, opt)
	if err != nil {
		return err
	}
	for _, e := range db.Entries {
		s.DB.Put(e)
	}
	return nil
}

// NewCharacterizationCache returns an empty process-wide characterization
// cache for CharacterizeCached.
func NewCharacterizationCache() *CharacterizationCache { return charz.NewCache() }

// LoadCharacterizationCache loads a cache persisted with its SaveFile
// method, so repeat campaign invocations skip characterization entirely.
func LoadCharacterizationCache(path string) (*CharacterizationCache, error) {
	return charz.LoadCacheFile(path)
}

// CharacterizeCached is Characterize through a memoizing cache: a
// configuration whose (config, platform, options) key is already cached is
// served without simulation, and misses characterize on the CharPool and
// populate both the cache and the database. Concurrent callers of the same
// key share one characterization run.
func (s *System) CharacterizeCached(ctx context.Context, configs []KernelConfig, opt charz.Options, cache *CharacterizationCache) error {
	if cache.Obs == nil {
		cache.Obs = s.Obs
	}
	for _, cfg := range configs {
		e, _, err := cache.GetOrCharacterize(ctx, cfg, s.CharPool, opt)
		if err != nil {
			return err
		}
		s.DB.Put(e)
	}
	return nil
}

// CharacterizeMixes characterizes every distinct configuration the mixes
// use.
func (s *System) CharacterizeMixes(ctx context.Context, mixes []Mix, opt charz.Options) error {
	seen := map[string]bool{}
	var configs []KernelConfig
	for _, m := range mixes {
		for _, cfg := range m.Configs() {
			if !seen[cfg.Name()] {
				seen[cfg.Name()] = true
				configs = append(configs, cfg)
			}
		}
	}
	return s.Characterize(ctx, configs, opt)
}

// RunnerOptions tunes grid evaluation (RunMixWith, EvaluateWith) without
// exposing the internal simulation runner. The zero value reproduces the
// system defaults, so RunMix(ctx, mix, iters) is exactly
// RunMixWith(ctx, mix, RunnerOptions{Iters: iters}).
type RunnerOptions struct {
	// Iters is the per-run iteration count; zero keeps the paper's 100.
	Iters int
	// Seed overrides the evaluation seed; zero keeps the system seed
	// derivation, so paired comparisons across policies stay paired.
	Seed uint64
	// NoiseSigma, when non-nil, overrides every job's BSP noise sigma —
	// a pointer so an explicit zero (fully deterministic iterations) is
	// distinguishable from "keep the characterized noise".
	NoiseSigma *float64
	// Parallelism bounds concurrent evaluation cells: zero selects all
	// CPUs, one recovers the sequential grid. Results are byte-identical
	// at every level.
	Parallelism int
}

// runner materializes the internal evaluation runner from options.
func (s *System) runner(opts RunnerOptions) *sim.Runner {
	r := sim.NewRunner(s.Pool, s.DB)
	r.Seed = s.seed + 1000
	if opts.Seed != 0 {
		r.Seed = opts.Seed
	}
	if opts.Iters > 0 {
		r.Iters = opts.Iters
	}
	if opts.NoiseSigma != nil {
		r.NoiseSigma = *opts.NoiseSigma
	}
	r.Parallelism = opts.Parallelism
	r.Obs = s.Obs
	r.Faults = s.Faults
	return r
}

// Runner returns an evaluation runner over the system's experiment pool.
//
// Deprecated: Runner leaks the internal *sim.Runner onto the facade. Use
// RunMixWith or EvaluateWith with RunnerOptions instead; this accessor
// will be removed once nothing reaches for runner internals.
func (s *System) Runner() *sim.Runner {
	return s.runner(RunnerOptions{})
}

// RunMix evaluates one mix across all budgets and policies. Cancelling ctx
// abandons the run at the next cell boundary and returns an error matching
// errors.Is(err, context.Canceled); every node is left capped at TDP.
func (s *System) RunMix(ctx context.Context, mix Mix, iters int) (MixResult, error) {
	return s.RunMixWith(ctx, mix, RunnerOptions{Iters: iters})
}

// RunMixWith is RunMix with the full evaluation options surface.
func (s *System) RunMixWith(ctx context.Context, mix Mix, opts RunnerOptions) (MixResult, error) {
	return s.runner(opts).RunMix(ctx, mix)
}

// Evaluate runs the full Figure 7/8 grid over the given mixes. Cancellation
// behaves as in RunMix.
func (s *System) Evaluate(ctx context.Context, mixes []Mix, iters int) (*Grid, error) {
	return s.EvaluateWith(ctx, mixes, RunnerOptions{Iters: iters})
}

// EvaluateWith is Evaluate with the full evaluation options surface.
func (s *System) EvaluateWith(ctx context.Context, mixes []Mix, opts RunnerOptions) (*Grid, error) {
	return s.runner(opts).Run(ctx, mixes)
}

// RunFacility executes a trace-driven machine-room simulation over the
// system's experiment pool. Zero-value cfg fields are defaulted from the
// system: Nodes from Pool, DB from the characterization database, Obs from
// the system sink, Faults from the system plan, Seed from the system seed.
// Cancelling ctx stops the run at the next tick boundary.
func (s *System) RunFacility(ctx context.Context, cfg FacilityConfig) (*FacilityResult, error) {
	if cfg.Nodes == nil {
		cfg.Nodes = s.Pool
	}
	if cfg.DB == nil {
		cfg.DB = s.DB
	}
	if cfg.Obs == nil {
		cfg.Obs = s.Obs
	}
	if cfg.Faults == nil {
		cfg.Faults = s.Faults
	}
	if cfg.Seed == 0 {
		cfg.Seed = s.seed + 2000
	}
	return facility.Run(ctx, cfg)
}

// RunCampaign fans a scenario matrix of facility simulations across a
// bounded worker pool over the system's experiment pool and shared
// characterization database, aggregating per-group statistics and policy
// comparisons. The report is byte-identical at any cfg.Parallelism.
func (s *System) RunCampaign(ctx context.Context, cfg CampaignConfig) (*CampaignReport, error) {
	r := &campaign.Runner{Nodes: s.Pool, DB: s.DB, Obs: s.Obs}
	return r.Run(ctx, cfg)
}

// MergeCampaignReports joins the partial reports of sharded campaign runs
// (CampaignConfig.Shards > 1) into the full report, byte-identical to a
// single-process run of the same matrix.
func MergeCampaignReports(shards ...*CampaignReport) (*CampaignReport, error) {
	return campaign.MergeReports(shards...)
}

// ReadCampaignReport deserializes a report written by WriteJSON.
func ReadCampaignReport(r io.Reader) (*CampaignReport, error) {
	return campaign.ReadReport(r)
}

// Policies returns every policy in the paper's presentation order.
func Policies() []Policy { return policy.All() }

// DynamicPolicies returns the three dynamic policies of Figure 8.
func DynamicPolicies() []Policy { return policy.Dynamic() }

// PolicyByName resolves a policy by its report name ("MixedAdaptive"),
// case-insensitively.
func PolicyByName(name string) (Policy, error) {
	for _, p := range policy.All() {
		if strings.EqualFold(p.Name(), name) {
			return p, nil
		}
	}
	return nil, fmt.Errorf("powerstack: unknown policy %q", name)
}

// Coordinate runs the mix under the execution-time coordination protocol
// (the paper's future work: no pre-characterization; job runtimes
// renegotiate budgets with the resource manager every iteration) on the
// system's experiment pool. Cancelling ctx stops between protocol rounds.
// The system fault plan's request dropouts exercise the hold-then-
// redistribute degradation path.
func (s *System) Coordinate(ctx context.Context, mix Mix, budget units.Power, iters int) (coordinator.Result, error) {
	if mix.TotalNodes() > len(s.Pool) {
		return coordinator.Result{}, fmt.Errorf("powerstack: mix needs %d nodes, pool has %d", mix.TotalNodes(), len(s.Pool))
	}
	pool := s.Pool
	var jobs []*bsp.Job
	for i, js := range mix.Jobs {
		j, err := bsp.NewJob(js.ID, js.Config, pool[:js.Nodes], s.seed+uint64(i)*31)
		if err != nil {
			return coordinator.Result{}, err
		}
		pool = pool[js.Nodes:]
		jobs = append(jobs, j)
	}
	defer func() {
		for _, j := range jobs {
			for _, n := range j.Nodes() {
				n.SetPowerLimit(n.TDP()) //nolint:errcheck // best-effort reset
			}
		}
	}()
	coord, err := coordinator.New(budget, jobs, true)
	if err != nil {
		return coordinator.Result{}, err
	}
	coord.SetObs(s.Obs)
	coord.Faults = s.Faults
	return coord.Run(ctx, iters)
}
