package powerstack

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"powerstack/internal/kernel"
	"powerstack/internal/workload"
)

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Options{}); err == nil {
		t.Error("zero cluster size accepted")
	}
	if _, err := NewSystem(Options{ClusterSize: 4, CharNodes: 8}); err == nil {
		t.Error("cluster smaller than char pool accepted")
	}
}

func TestSystemEndToEnd(t *testing.T) {
	sys, err := NewSystem(Options{ClusterSize: 32, Seed: 5, CharNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Pool) != 28 || len(sys.CharPool) != 4 {
		t.Fatalf("pool split: %d/%d", len(sys.Pool), len(sys.CharPool))
	}

	mix := workload.WastefulPower().Scaled(24)
	if err := sys.CharacterizeMixes(context.Background(), []Mix{mix}, QuickCharacterization()); err != nil {
		t.Fatal(err)
	}
	if sys.DB.Len() == 0 {
		t.Fatal("characterization produced no entries")
	}

	res, err := sys.RunMix(context.Background(), mix, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Errorf("budget levels = %d", len(res.Cells))
	}
	for lvl, cells := range res.Cells {
		if len(cells) != 5 {
			t.Errorf("%s: policies = %d", lvl, len(cells))
		}
	}
	for lvl, sv := range res.Savings {
		if len(sv) != 3 {
			t.Errorf("%s: savings entries = %d", lvl, len(sv))
		}
	}
}

// TestRunnerOptionsEquivalence pins the facade redesign contract: the
// legacy iteration-count helpers are exactly the RunnerOptions-based
// methods with a zero options struct, byte for byte, and the options
// surface actually reaches the runner (a different seed changes results).
func TestRunnerOptionsEquivalence(t *testing.T) {
	sys, err := NewSystem(Options{ClusterSize: 32, Seed: 5, CharNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.WastefulPower().Scaled(24)
	if err := sys.CharacterizeMixes(context.Background(), []Mix{mix}, QuickCharacterization()); err != nil {
		t.Fatal(err)
	}

	legacy, err := sys.RunMix(context.Background(), mix, 5)
	if err != nil {
		t.Fatal(err)
	}
	opted, err := sys.RunMixWith(context.Background(), mix, RunnerOptions{Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	lb, _ := json.Marshal(legacy)
	ob, _ := json.Marshal(opted)
	if !bytes.Equal(lb, ob) {
		t.Error("RunMixWith{Iters} diverged from RunMix")
	}

	reseeded, err := sys.RunMixWith(context.Background(), mix, RunnerOptions{Iters: 5, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := json.Marshal(reseeded)
	if bytes.Equal(lb, rb) {
		t.Error("Seed override did not reach the runner")
	}
}

func TestMediumClusterSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-cluster survey in -short mode")
	}
	sys, err := NewSystem(Options{ClusterSize: 400, Seed: 3, SelectMediumCluster: true, CharNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Clustering == nil {
		t.Fatal("clustering missing")
	}
	usable := len(sys.Pool) + len(sys.CharPool)
	if usable >= 400 {
		t.Errorf("medium selection kept all %d nodes", usable)
	}
	// Roughly the 918/2000 medium fraction.
	frac := float64(usable) / 400
	if frac < 0.3 || frac > 0.65 {
		t.Errorf("medium fraction = %v", frac)
	}
}

func TestPoliciesExported(t *testing.T) {
	if len(Policies()) != 5 || len(DynamicPolicies()) != 3 {
		t.Error("policy lists wrong")
	}
	p, err := PolicyByName("mixedadaptive")
	if err != nil || p.Name() != "MixedAdaptive" {
		t.Errorf("PolicyByName: %v, %v", p, err)
	}
	if _, err := PolicyByName("NoSuchPolicy"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestCoordinateFacade(t *testing.T) {
	sys, err := NewSystem(Options{ClusterSize: 20, Seed: 4, CharNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	mix := Mix{Name: "coord", Jobs: []workload.JobSpec{
		{ID: "a", Config: KernelConfig{Intensity: 8, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 3}, Nodes: 8},
		{ID: "b", Config: KernelConfig{Intensity: 32, Vector: kernel.YMM, Imbalance: 1}, Nodes: 8},
	}}
	res, err := sys.Coordinate(context.Background(), mix, 16*190*1.0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEnergy <= 0 || len(res.GrantHistory) != 2 {
		t.Errorf("coordinate result: %+v", res)
	}
	// The pool's limits are restored afterwards.
	for _, n := range sys.Pool[:16] {
		p, err := n.PowerLimit()
		if err != nil {
			t.Fatal(err)
		}
		if p.Watts() < 239 {
			t.Errorf("node %s limit %v not reset", n.ID, p)
		}
	}
	// Oversized mixes are rejected.
	if _, err := sys.Coordinate(context.Background(), Mix{Jobs: []workload.JobSpec{{ID: "x", Config: mix.Jobs[0].Config, Nodes: 99}}}, 1000, 5); err == nil {
		t.Error("oversized mix accepted")
	}
}

func TestCharacterizeSingleConfig(t *testing.T) {
	sys, err := NewSystem(Options{ClusterSize: 10, Seed: 2, CharNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := KernelConfig{Intensity: 4, Vector: kernel.YMM, Imbalance: 1}
	if err := sys.Characterize(context.Background(), []KernelConfig{cfg}, QuickCharacterization()); err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.DB.Get(cfg); !ok {
		t.Error("entry missing after Characterize")
	}
}
