package powerstack

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"powerstack/internal/kernel"
	"powerstack/internal/obs"
	"powerstack/internal/workload"
)

// TestObservabilityThroughFacade enables the sink on a system, runs the
// coordination protocol, and checks that decisions from every layer the
// run crosses — coordinator grants, node limit writes, MSR writes — were
// recorded with consistent totals.
func TestObservabilityThroughFacade(t *testing.T) {
	sys, err := NewSystem(Options{ClusterSize: 20, Seed: 4, CharNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	sink := sys.EnableObservability()
	if sink == nil || sys.Obs != sink {
		t.Fatal("EnableObservability did not install a sink")
	}
	if again := sys.EnableObservability(); again != sink {
		t.Error("EnableObservability is not idempotent")
	}

	mix := Mix{Name: "coord", Jobs: []workload.JobSpec{
		{ID: "a", Config: KernelConfig{Intensity: 8, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 3}, Nodes: 8},
		{ID: "b", Config: KernelConfig{Intensity: 32, Vector: kernel.YMM, Imbalance: 1}, Nodes: 8},
	}}
	const iters = 10
	if _, err := sys.Coordinate(context.Background(), mix, 16*190*1.0, iters); err != nil {
		t.Fatal(err)
	}

	byType := map[obs.EventType]int{}
	for _, e := range sink.Journal.Snapshot() {
		byType[e.Type]++
	}
	// One grant per job per protocol round, regrants applied on accept.
	if byType[obs.EvGrant] != 2*iters {
		t.Errorf("grants = %d, want %d", byType[obs.EvGrant], 2*iters)
	}
	if byType[obs.EvRegrant] == 0 || byType[obs.EvLimitWrite] == 0 || byType[obs.EvEpoch] == 0 {
		t.Errorf("event mix incomplete: %v", byType)
	}
	// Metrics agree with the journal where both record the same decision.
	if got := sink.Metrics.Counter(obs.MetricGrants, "job", "a").Value(); got != iters {
		t.Errorf("job a grant counter = %v, want %d", got, iters)
	}
	// Each node-level limit write programs both socket PL1 registers.
	writes := sink.Metrics.Counter(obs.MetricLimitWrites).Value()
	msr := sink.Metrics.Counter(obs.MetricMSRWrites).Value()
	if writes == 0 || msr != 2*writes {
		t.Errorf("msr writes = %v for %v limit writes, want 2x", msr, writes)
	}

	var b strings.Builder
	if err := sink.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "powerstack_grants_total") {
		t.Error("exposition missing grant family")
	}
}

// TestRunMixRecordsCells checks the pre-characterized evaluation path
// threads the sink down to sim cells and GEOPM iterations.
func TestRunMixRecordsCells(t *testing.T) {
	sys, err := NewSystem(Options{ClusterSize: 32, Seed: 5, CharNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.WastefulPower().Scaled(24)
	if err := sys.CharacterizeMixes(context.Background(), []Mix{mix}, QuickCharacterization()); err != nil {
		t.Fatal(err)
	}
	sink := sys.EnableObservability()
	if _, err := sys.RunMix(context.Background(), mix, 6); err != nil {
		t.Fatal(err)
	}
	if got := sink.Metrics.Histogram(obs.MetricCellSeconds, nil).Count(); got == 0 {
		t.Error("no sim cells observed")
	}
	var cells int
	for _, e := range sink.Journal.Snapshot() {
		if e.Type == obs.EvCell && e.Value > 0 {
			cells++
		}
	}
	if cells == 0 {
		t.Error("no cell-done events in journal")
	}
}

// TestServeDebugFacade starts the debug server through the facade and
// fetches both artifacts over HTTP.
func TestServeDebugFacade(t *testing.T) {
	sys, err := NewSystem(Options{ClusterSize: 12, Seed: 3, CharNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := sys.ServeDebug(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck // test
	if sys.Obs == nil {
		t.Fatal("ServeDebug did not enable observability")
	}
	sys.Obs.Grant("j1", 0, 175)

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck // test
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `powerstack_grants_total{job="j1"} 1`) {
		t.Errorf("/metrics = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck // test
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/trace invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("/trace empty")
	}
}

// TestServeDebugContextShutdown ties the debug server to a cancellable
// context and verifies cancellation drains it: the listener stops
// accepting new connections without any explicit Shutdown call.
func TestServeDebugContextShutdown(t *testing.T) {
	sys, err := NewSystem(Options{ClusterSize: 12, Seed: 3, CharNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := sys.ServeDebug(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck // test
	addr := srv.Addr()

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck // test
	cancel()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			break // listener closed: drained
		}
		resp.Body.Close() //nolint:errcheck // test
		if time.Now().After(deadline) {
			t.Fatal("server still serving after ctx cancel")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
