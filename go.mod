module powerstack

go 1.23
