package powerstack

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"powerstack/internal/kernel"
	"powerstack/internal/obs"
	"powerstack/internal/rm"
	"powerstack/internal/units"
	"powerstack/internal/workload"
)

// faultTestConfigs are three distinct workloads so one characterization
// entry can be corrupted while budgets stay computable from the others.
func faultTestConfigs() []kernel.Config {
	return []kernel.Config{
		{Intensity: 8, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 0.5, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 2},
		{Intensity: 32, Vector: kernel.XMM, Imbalance: 1},
	}
}

func faultTestMix() Mix {
	cfgs := faultTestConfigs()
	return Mix{Name: "chaos", Jobs: []workload.JobSpec{
		{ID: "cj0", Config: cfgs[0], Nodes: 4},
		{ID: "cj1", Config: cfgs[1], Nodes: 4},
		{ID: "cj2", Config: cfgs[2], Nodes: 4},
	}}
}

// faultTestSystem builds a 20-node experiment pool with the three chaos
// configs characterized.
func faultTestSystem(t *testing.T, seed uint64) *System {
	t.Helper()
	sys, err := NewSystem(Options{ClusterSize: 24, Seed: seed, CharNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Characterize(context.Background(), faultTestConfigs(), QuickCharacterization()); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestEvaluateCancelledReturnsAtCellBoundary(t *testing.T) {
	sys := faultTestSystem(t, 21)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := sys.Evaluate(ctx, []Mix{faultTestMix()}, 50)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled to survive to the facade", err)
	}
	// A cancelled grid stops at the next cell boundary instead of
	// draining all 15 cells: nowhere near a full-grid runtime.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancelled Evaluate took %v", elapsed)
	}
	// Whatever ran was released: every pool node is back at TDP.
	for _, n := range sys.Pool {
		p, err := n.PowerLimit()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Watts()-n.TDP().Watts()) > 0.5 {
			t.Fatalf("node %s limit %v, want TDP after cancellation", n.ID, p)
		}
	}
}

func TestRunMixUncharacterizedIsErrNotCharacterized(t *testing.T) {
	sys, err := NewSystem(Options{ClusterSize: 24, Seed: 3, CharNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.RunMix(context.Background(), faultTestMix(), 5)
	if !errors.Is(err, ErrNotCharacterized) {
		t.Fatalf("err = %v, want ErrNotCharacterized", err)
	}
}

func TestRunFacilityInfeasibleBudgetIsErrBudgetInfeasible(t *testing.T) {
	sys := faultTestSystem(t, 9)
	_, err := sys.RunFacility(context.Background(), FacilityConfig{
		SystemBudget:     1 * units.Watt,
		MeanInterarrival: time.Second,
		MinJobIterations: 100,
		MaxJobIterations: 200,
		JobSizes:         []int{2},
		Workloads:        faultTestConfigs(),
		Duration:         2 * time.Minute,
		Tick:             time.Minute,
	})
	if !errors.Is(err, ErrBudgetInfeasible) {
		t.Fatalf("err = %v, want ErrBudgetInfeasible", err)
	}
}

func TestSubmitSentinelsSurviveToFacade(t *testing.T) {
	// The facade's re-exported sentinels must match what the resource
	// manager wraps, through every %w layer.
	sys := faultTestSystem(t, 13)
	mgr := rm.NewManager(sys.Pool[:4])
	if _, err := mgr.Submit(rm.JobSpec{ID: "a", Config: faultTestConfigs()[0], Nodes: 2}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Submit(rm.JobSpec{ID: "b", Config: faultTestConfigs()[0], Nodes: 3}, 2); !errors.Is(err, ErrInsufficientNodes) {
		t.Fatalf("err = %v, want ErrInsufficientNodes", err)
	}
	if _, held := mgr.Drain(sys.Pool[3].ID, "test"); held {
		t.Fatal("free node reported as held")
	}
	if _, err := mgr.Submit(rm.JobSpec{ID: "c", Config: faultTestConfigs()[0], Nodes: 2}, 3); !errors.Is(err, ErrNodeQuarantined) {
		t.Fatalf("err = %v, want ErrNodeQuarantined", err)
	}
}

// chaosSeeds returns the fault-plan seeds to sweep: CHAOS_SEED pins one
// (the CI chaos matrix), default is all three.
func chaosSeeds(t *testing.T) []uint64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", s, err)
		}
		return []uint64{v}
	}
	return []uint64{1, 2, 3}
}

func TestChaosGridCompletesAndJournals(t *testing.T) {
	cfgs := faultTestConfigs()
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sys := faultTestSystem(t, 100+seed)
			sink := sys.EnableObservability()

			// A core of guaranteed-to-fire injections (crash at pool
			// head, a release-time MSR write fault, a dropout, one
			// corrupt entry) plus seed-varied extras from the generator.
			plan := &FaultPlan{Injections: []FaultInjection{
				{Kind: FaultNodeCrash, Node: sys.Pool[0].ID},
				{Kind: FaultMSRWrite, Node: sys.Pool[1].ID, After: 1},
				{Kind: FaultTelemetryDropout, Node: sys.Pool[2].ID, Duration: time.Minute},
				{Kind: FaultCharzCorruption, Config: cfgs[2].Name()},
			}}
			var ids []string
			for _, n := range sys.Pool[3:] {
				ids = append(ids, n.ID)
			}
			extra := GenerateFaults(ids, FaultGenOptions{Seed: seed, MSRWriteFaults: 1, SlowNodes: 1})
			plan.Injections = append(plan.Injections, extra.Injections...)
			sys.Faults = plan

			grid, err := sys.Evaluate(context.Background(), []Mix{faultTestMix()}, 5)
			if err != nil {
				t.Fatalf("chaos grid failed: %v", err)
			}
			if len(grid.Mixes) != 1 || len(grid.Mixes[0].Cells) != 3 {
				t.Fatalf("grid shape: %+v", grid.Mixes)
			}
			for lvl, cells := range grid.Mixes[0].Cells {
				for pname, c := range cells {
					if c.TotalEnergy <= 0 || c.SystemTime <= 0 {
						t.Errorf("%s/%s: empty cell despite faults: %+v", lvl, pname, c)
					}
				}
			}

			counts := map[obs.EventType]int{}
			for _, e := range sink.Journal.Snapshot() {
				counts[e.Type]++
			}
			for _, want := range []obs.EventType{
				obs.EvFaultInjected, obs.EvNodeQuarantined, obs.EvPolicyFallback,
			} {
				if counts[want] == 0 {
					t.Errorf("no %s events journaled; counts: %v", want, counts)
				}
			}
		})
	}
}

func TestZeroFaultPlanIsByteIdentical(t *testing.T) {
	run := func(plan *FaultPlan) *Grid {
		sys := faultTestSystem(t, 55)
		sys.Faults = plan
		g, err := sys.Evaluate(context.Background(), []Mix{faultTestMix()}, 5)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	base := run(nil)
	empty := run(&FaultPlan{})
	if !reflect.DeepEqual(base, empty) {
		t.Fatal("empty fault plan perturbed the grid")
	}
}
