// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// bench runs a reduced experiment under the variant and reports the
// physically meaningful quantity through b.ReportMetric, so
// `go test -bench=Ablation -benchtime=1x` prints a compact ablation table.
package powerstack

import (
	"testing"

	"powerstack/internal/bsp"
	"powerstack/internal/charz"
	"powerstack/internal/cluster"
	"powerstack/internal/cpumodel"
	"powerstack/internal/geopm"
	"powerstack/internal/kernel"
	"powerstack/internal/node"
	"powerstack/internal/units"
)

// ablationConfig is the imbalanced workload all ablations probe.
func ablationConfig() kernel.Config {
	return kernel.Config{Intensity: 8, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 3}
}

// BenchmarkAblationSpinVsIdleWait contrasts the spin-wait barrier model
// (MPI busy-poll, the paper's platform) with C-state idle waiting. The
// reported watts-per-node gap is the energy sink the waiting-rank axis
// exposes: with idle waiting, uncapped power is no longer insensitive to
// imbalance and the policies have far less waste to harvest at the source.
func BenchmarkAblationSpinVsIdleWait(b *testing.B) {
	for _, idle := range []bool{false, true} {
		name := "spin-wait"
		if idle {
			name = "idle-wait"
		}
		b.Run(name, func(b *testing.B) {
			var hostPower float64
			for i := 0; i < b.N; i++ {
				nodes := benchNodes(b, 8)
				for _, n := range nodes {
					n.IdleWait = idle
				}
				job, err := bsp.NewJob("ablate", ablationConfig(), nodes, 3)
				if err != nil {
					b.Fatal(err)
				}
				job.NoiseSigma = 0
				rr, err := job.Run(10)
				if err != nil {
					b.Fatal(err)
				}
				hostPower = rr.MeanPower().Watts() / 8
			}
			b.ReportMetric(hostPower, "W/node")
		})
	}
}

// BenchmarkAblationBalancerGain sweeps the balancer's proportional gain
// and reports the iteration at which it converged: too-small gains crawl,
// too-large gains overshoot and re-trigger adjustments.
func BenchmarkAblationBalancerGain(b *testing.B) {
	for _, gain := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		b.Run(gainName(gain), func(b *testing.B) {
			var converged float64
			for i := 0; i < b.N; i++ {
				// Identical parts isolate the gain's effect from
				// hardware variation.
				nodes := uniformNodes(b, 8)
				job, err := bsp.NewJob("ablate", ablationConfig(), nodes, 3)
				if err != nil {
					b.Fatal(err)
				}
				job.NoiseSigma = 0
				bal := geopm.NewPowerBalancer()
				bal.Gain = gain
				ctl, err := geopm.NewController(job, bal, units.Power(8)*240*units.Watt)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := ctl.Run(60)
				if err != nil {
					b.Fatal(err)
				}
				if rep.ConvergedAt < 0 {
					converged = 60
				} else {
					converged = float64(rep.ConvergedAt)
				}
			}
			b.ReportMetric(converged, "iters-to-converge")
		})
	}
}

// uniformNodes builds identical (eta=1) hosts.
func uniformNodes(b *testing.B, n int) []*node.Node {
	b.Helper()
	out := make([]*node.Node, n)
	for i := range out {
		nd, err := node.New("uniform", cpumodel.Quartz(), 1.0)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = nd
	}
	return out
}

func gainName(g float64) string {
	switch g {
	case 0.1:
		return "gain-0.10"
	case 0.25:
		return "gain-0.25"
	case 0.5:
		return "gain-0.50"
	case 0.75:
		return "gain-0.75"
	default:
		return "gain-0.90"
	}
}

// BenchmarkAblationMinPowerFraction sweeps the balancer's headroom guard
// and reports the characterized needed power of a waiting host: the guard
// trades harvested power (lower needed => bigger policy savings) against
// responsiveness margin. 0.82 calibrates to the paper's Figure 5.
func BenchmarkAblationMinPowerFraction(b *testing.B) {
	for _, frac := range []float64{0.70, 0.82, 0.95} {
		b.Run(fracName(frac), func(b *testing.B) {
			var needed float64
			for i := 0; i < b.N; i++ {
				nodes := benchNodes(b, 8)
				job, err := bsp.NewJob("ablate", ablationConfig(), nodes, 3)
				if err != nil {
					b.Fatal(err)
				}
				job.NoiseSigma = 0
				bal := geopm.NewPowerBalancer()
				bal.MinPowerFraction = frac
				ctl, err := geopm.NewController(job, bal, units.Power(8)*240*units.Watt)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := ctl.Run(50)
				if err != nil {
					b.Fatal(err)
				}
				var sum float64
				var n int
				for _, h := range rep.Hosts {
					if h.Role == bsp.Waiting {
						sum += h.FinalLimit.Watts()
						n++
					}
				}
				needed = sum / float64(n)
			}
			b.ReportMetric(needed, "W/waiting-node")
		})
	}
}

func fracName(f float64) string {
	switch f {
	case 0.70:
		return "guard-0.70"
	case 0.82:
		return "guard-0.82"
	default:
		return "guard-0.95"
	}
}

// BenchmarkAblationFreqExponent sweeps the dynamic-power frequency
// exponent and reports the achieved frequency of the survey workload under
// a 70 W cap: steeper exponents make caps cost less frequency, flattening
// every policy effect in the evaluation.
func BenchmarkAblationFreqExponent(b *testing.B) {
	for _, alpha := range []float64{2.0, 2.4, 3.0} {
		b.Run(alphaName(alpha), func(b *testing.B) {
			spec := cpumodel.Quartz()
			spec.FreqExponent = alpha
			s := cpumodel.NewSocket(spec, 1)
			cfg := cluster.SurveyWorkload()
			ph := cpumodel.Phase{Work: cfg.CriticalWork(), Vector: cfg.Vector}
			var ghz float64
			for i := 0; i < b.N; i++ {
				ghz = s.FrequencyForCap(ph, cluster.SurveyCap).GHz()
			}
			b.ReportMetric(ghz, "GHz@70W")
		})
	}
}

func alphaName(a float64) string {
	switch a {
	case 2.0:
		return "alpha-2.0"
	case 2.4:
		return "alpha-2.4"
	default:
		return "alpha-3.0"
	}
}

// BenchmarkAblationMediumClusterSelection quantifies why the paper (and
// this reproduction) controls hardware variation: it reports the spread
// between the most and least demanding waiting hosts in a characterization
// run, with and without the Figure 6 medium-cluster selection. Large
// spread inflates the per-role needed power and erases the policies'
// redistribution signal.
func BenchmarkAblationMediumClusterSelection(b *testing.B) {
	for _, medium := range []bool{false, true} {
		name := "all-nodes"
		if medium {
			name = "medium-cluster"
		}
		b.Run(name, func(b *testing.B) {
			var spread float64
			for i := 0; i < b.N; i++ {
				c, err := cluster.New(120, cpumodel.Quartz(), cpumodel.QuartzVariation(), 7)
				if err != nil {
					b.Fatal(err)
				}
				pool := c.Nodes()
				if medium {
					m, _, err := c.MediumNodes()
					if err != nil {
						b.Fatal(err)
					}
					pool = m
				}
				if len(pool) > 16 {
					pool = pool[:16]
				}
				e, err := charz.Characterize(ablationConfig(), pool, charz.Options{
					MonitorIters: 5, BalancerIters: 40, Seed: 2, NoiseSigma: 0,
				})
				if err != nil {
					b.Fatal(err)
				}
				spread = e.NeededMax.Watts() - e.NeededMin.Watts()
			}
			b.ReportMetric(spread, "W-needed-spread")
		})
	}
}
