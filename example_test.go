package powerstack_test

import (
	"context"
	"fmt"
	"log"

	"powerstack"
	"powerstack/internal/kernel"
	"powerstack/internal/workload"
)

// Resolving a policy by its report name, e.g. from a CLI flag.
func ExamplePolicyByName() {
	p, err := powerstack.PolicyByName("MixedAdaptive")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.Name())
	// Output: MixedAdaptive
}

// The five Section III policies, in the paper's presentation order.
func ExamplePolicies() {
	for _, p := range powerstack.Policies() {
		fmt.Println(p.Name())
	}
	// Output:
	// Precharacterized
	// StaticCaps
	// MinimizeWaste
	// JobAdaptive
	// MixedAdaptive
}

// A complete (deterministic-shape) evaluation of one small mix: build a
// system, characterize the workload, run all five policies at the three
// Table III budgets, and check who wins.
func ExampleSystem_RunMix() {
	sys, err := powerstack.NewSystem(powerstack.Options{ClusterSize: 20, Seed: 1, CharNodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	cfg := powerstack.KernelConfig{Intensity: 8, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 3}
	if err := sys.Characterize(context.Background(), []powerstack.KernelConfig{cfg}, powerstack.QuickCharacterization()); err != nil {
		log.Fatal(err)
	}
	mix := workload.Mix{Name: "demo", Jobs: []workload.JobSpec{
		{ID: "a", Config: cfg, Nodes: 8},
		{ID: "b", Config: cfg, Nodes: 8},
	}}
	res, err := sys.RunMix(context.Background(), mix, 20)
	if err != nil {
		log.Fatal(err)
	}
	s := res.Savings["ideal"]["MixedAdaptive"]
	fmt.Println("MixedAdaptive saves time at the ideal budget:", s.Time > 0.01)
	fmt.Println("and energy:", s.Energy > 0.01)
	// Output:
	// MixedAdaptive saves time at the ideal budget: true
	// and energy: true
}
