// Command campaignbench measures the campaign engine against the naive
// multi-run flow it replaces and writes BENCH_campaign.json.
//
// The baseline models how multi-seed sweeps ran before the campaign engine
// existed: one facility invocation per scenario, each paying a fresh clone
// pool and a full re-characterization of the workload set (the cmd/facility
// flow in a shell loop). The engine runs the same 64-scenario matrix through
// campaign.Runner: characterization happens once through the singleflight
// cache, clone pools are recycled between scenarios, and the report is
// checked byte-identical across -parallel settings before any speedup is
// reported.
//
// The host section records GOMAXPROCS and CPU count so single-core hosts —
// where raw parallel scaling is impossible and the speedup comes entirely
// from the cache, pool recycling, and hot-path work — are distinguishable
// from multi-core runs.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"log"
	"math/rand/v2"
	"os"
	"runtime"
	"testing"
	"time"

	"powerstack/internal/bsp"
	"powerstack/internal/campaign"
	"powerstack/internal/charz"
	"powerstack/internal/cluster"
	"powerstack/internal/cpumodel"
	"powerstack/internal/facility"
	"powerstack/internal/kernel"
	"powerstack/internal/node"
	"powerstack/internal/policy"
	"powerstack/internal/stats"
	"powerstack/internal/units"
)

const benchNodes = 6

func benchWorkloads() []kernel.Config {
	return []kernel.Config{
		{Intensity: 0.25, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 8, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 32, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 1, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 2},
		{Intensity: 16, Vector: kernel.YMM, WaitingPct: 75, Imbalance: 3},
		{Intensity: 8, Vector: kernel.XMM, Imbalance: 1},
	}
}

func benchCampaignConfig() campaign.Config {
	return campaign.Config{
		Base: facility.Config{
			MinJobIterations: 500,
			MaxJobIterations: 2000,
			JobSizes:         []int{2, 4},
			Workloads:        benchWorkloads(),
			Duration:         2 * time.Hour,
			Tick:             time.Minute,
		},
		Seeds:         []uint64{1, 2, 3, 4, 5, 6, 7, 8},
		Interarrivals: []time.Duration{15 * time.Minute, 30 * time.Minute},
		Budgets:       []units.Power{benchNodes * 200, benchNodes * 240},
		Policies:      []policy.Policy{policy.StaticCaps{}, policy.MixedAdaptive{}},
	}
}

type hotPath struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type engineRun struct {
	Parallel           int     `json:"parallel"`
	Seconds            float64 `json:"seconds"`
	TotalSeconds       float64 `json:"total_seconds"`
	ScenariosPerSecond float64 `json:"scenarios_per_second"`
	SpeedupVsBaseline  float64 `json:"speedup_vs_baseline"`
}

type benchOutput struct {
	GeneratedBy string `json:"generated_by"`
	Host        struct {
		GOMAXPROCS int `json:"gomaxprocs"`
		NumCPU     int `json:"num_cpu"`
	} `json:"host"`
	Matrix struct {
		Scenarios     int `json:"scenarios"`
		Seeds         int `json:"seeds"`
		Interarrivals int `json:"interarrivals"`
		Budgets       int `json:"budgets"`
		Policies      int `json:"policies"`
		Nodes         int `json:"nodes"`
	} `json:"matrix"`
	Baseline struct {
		Mode               string  `json:"mode"`
		Seconds            float64 `json:"seconds"`
		ScenariosPerSecond float64 `json:"scenarios_per_second"`
	} `json:"baseline"`
	Engine               []engineRun `json:"engine"`
	ByteIdentical        bool        `json:"byte_identical"`
	MatchesNaiveBaseline bool        `json:"matches_naive_baseline"`
	Cache                struct {
		ColdSeconds float64 `json:"cold_seconds"`
		WarmSeconds float64 `json:"warm_seconds"`
		Speedup     float64 `json:"speedup"`
	} `json:"cache"`
	Pool struct {
		CloneNsPerOp   float64 `json:"clone_ns_per_op"`
		RecycleNsPerOp float64 `json:"recycle_ns_per_op"`
	} `json:"pool"`
	HotPaths []hotPath `json:"hot_paths"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaignbench: ")
	outPath := flag.String("out", "BENCH_campaign.json", "output path")
	flag.Parse()
	ctx := context.Background()

	c, err := cluster.New(benchNodes+3, cpumodel.Quartz(), cpumodel.QuartzVariation(), 11)
	if err != nil {
		log.Fatal(err)
	}
	src := c.Nodes()[:benchNodes]
	charNodes := c.Nodes()[benchNodes:]
	opt := charz.DefaultOptions()
	cfg := benchCampaignConfig()
	workloads := benchWorkloads()
	nScenarios := len(cfg.Seeds) * len(cfg.Interarrivals) * len(cfg.Budgets) * len(cfg.Policies)

	var out benchOutput
	out.GeneratedBy = "cmd/campaignbench"
	out.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	out.Host.NumCPU = runtime.NumCPU()
	out.Matrix.Scenarios = nScenarios
	out.Matrix.Seeds = len(cfg.Seeds)
	out.Matrix.Interarrivals = len(cfg.Interarrivals)
	out.Matrix.Budgets = len(cfg.Budgets)
	out.Matrix.Policies = len(cfg.Policies)
	out.Matrix.Nodes = benchNodes

	// Naive baseline: one facility invocation per scenario, each with a
	// fresh clone pool and a full re-characterization, enumerated in the
	// campaign's canonical matrix order.
	log.Printf("baseline: %d scenarios, re-characterizing each...", nScenarios)
	naive := make([]*facility.Result, 0, nScenarios)
	start := time.Now()
	for _, pol := range cfg.Policies {
		for _, ia := range cfg.Interarrivals {
			for _, budget := range cfg.Budgets {
				for _, seed := range cfg.Seeds {
					db, err := charz.CharacterizeAll(ctx, workloads, cluster.ClonePool(charNodes), opt)
					if err != nil {
						log.Fatal(err)
					}
					fc := cfg.Base
					fc.Nodes = cluster.ClonePool(src)
					fc.DB = db
					fc.Seed = seed
					fc.MeanInterarrival = ia
					fc.SystemBudget = budget
					fc.Policy = pol
					res, err := facility.Run(ctx, fc)
					if err != nil {
						log.Fatal(err)
					}
					naive = append(naive, res)
				}
			}
		}
	}
	out.Baseline.Mode = "sequential, fresh clone pool + full re-characterization per scenario"
	out.Baseline.Seconds = time.Since(start).Seconds()
	out.Baseline.ScenariosPerSecond = float64(nScenarios) / out.Baseline.Seconds
	log.Printf("baseline: %.2fs (%.1f scenarios/s)", out.Baseline.Seconds, out.Baseline.ScenariosPerSecond)

	// Engine: characterize once through the singleflight cache (timed as
	// the cold fill), then run the same matrix at increasing parallelism.
	cache := charz.NewCache()
	db := charz.NewDB()
	start = time.Now()
	for _, w := range workloads {
		e, _, err := cache.GetOrCharacterize(ctx, w, cluster.ClonePool(charNodes), opt)
		if err != nil {
			log.Fatal(err)
		}
		db.Put(e)
	}
	out.Cache.ColdSeconds = time.Since(start).Seconds()
	start = time.Now()
	for _, w := range workloads {
		if _, _, err := cache.GetOrCharacterize(ctx, w, cluster.ClonePool(charNodes), opt); err != nil {
			log.Fatal(err)
		}
	}
	out.Cache.WarmSeconds = time.Since(start).Seconds()
	out.Cache.Speedup = out.Cache.ColdSeconds / out.Cache.WarmSeconds
	log.Printf("cache: cold %.3fs, warm %.6fs (%.0fx)", out.Cache.ColdSeconds, out.Cache.WarmSeconds, out.Cache.Speedup)

	runner := &campaign.Runner{Nodes: src, DB: db}
	var refJSON []byte
	out.ByteIdentical = true
	for _, par := range []int{1, 2, 4, 8} {
		cfg.Parallelism = par
		start = time.Now()
		rep, err := runner.Run(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		secs := time.Since(start).Seconds()
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			log.Fatal(err)
		}
		if refJSON == nil {
			refJSON = buf.Bytes()
			out.MatchesNaiveBaseline = matchesNaive(rep, naive)
		} else if !bytes.Equal(refJSON, buf.Bytes()) {
			out.ByteIdentical = false
		}
		total := secs + out.Cache.ColdSeconds
		out.Engine = append(out.Engine, engineRun{
			Parallel:           par,
			Seconds:            secs,
			TotalSeconds:       total,
			ScenariosPerSecond: float64(nScenarios) / secs,
			SpeedupVsBaseline:  out.Baseline.Seconds / total,
		})
		log.Printf("engine -parallel %d: %.2fs run, %.2fs with characterization (%.1fx vs baseline)",
			par, secs, total, out.Baseline.Seconds/total)
	}

	out.Pool.CloneNsPerOp, out.Pool.RecycleNsPerOp = benchPool(src)
	out.HotPaths = benchHotPaths()
	log.Printf("pool: clone %.0f ns/op, recycled acquire %.0f ns/op", out.Pool.CloneNsPerOp, out.Pool.RecycleNsPerOp)

	b, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*outPath, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *outPath)
}

// matchesNaive cross-checks the engine report against the naive baseline's
// per-scenario results, which ran in the same matrix order.
func matchesNaive(rep *campaign.Report, naive []*facility.Result) bool {
	if len(rep.Scenarios) != len(naive) {
		return false
	}
	for i, s := range rep.Scenarios {
		r := naive[i]
		if s.TotalEnergy != r.TotalEnergy || s.Completed != r.Completed ||
			s.MeanQueueWait != r.MeanQueueWait || s.PeakPower != r.PeakPower {
			return false
		}
	}
	return true
}

// benchPool times a fresh ClonePool against a recycled Acquire/Release
// round trip over the same source pool.
func benchPool(src []*node.Node) (cloneNs, recycleNs float64) {
	clone := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster.ClonePool(src)
		}
	})
	rec := cluster.NewPoolRecycler(src)
	rec.Release(rec.Acquire())
	recycle := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec.Release(rec.Acquire())
		}
	})
	return float64(clone.NsPerOp()), float64(recycle.NsPerOp())
}

func benchHotPaths() []hotPath {
	var out []hotPath
	add := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		out = append(out, hotPath{Name: name, NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp()})
	}

	// Policy replan: 8 jobs × 16 hosts through the pooled-scratch path.
	jobs := benchPolicyJobs()
	sys := policy.System{Budget: 100 * 8 * 16}
	add("policy.MixedAdaptive.Allocate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := (policy.MixedAdaptive{}).Allocate(sys, jobs); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Cap inversion: precomputed table vs full-range bisection.
	sock := cpumodel.NewSocket(cpumodel.Quartz(), 1.0)
	w := kernel.Config{Intensity: 8, Vector: kernel.YMM, Imbalance: 1}
	ph := cpumodel.Phase{Work: w.TotalWorkPerHost(18, true), Vector: w.Vector}
	table := cpumodel.NewCapTable(sock, ph)
	caps := make([]units.Power, 64)
	for i := range caps {
		caps[i] = 60 + units.Power(i)
	}
	add("cpumodel.CapTable.FrequencyForCap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			table.FrequencyForCap(caps[i%len(caps)])
		}
	})
	add("cpumodel.Socket.FrequencyForCap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sock.FrequencyForCap(ph, caps[i%len(caps)])
		}
	})
	add("cpumodel.Socket.Operate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sock.Operate(ph, sock.Spec.BaseFreq)
		}
	})

	// Seed aggregation: the bootstrap behind every group CI.
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = float64(i) * 1.7
	}
	rng := rand.New(rand.NewPCG(1, 2))
	add("stats.Bootstrap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			stats.Bootstrap(xs, 200, stats.Mean, rng)
		}
	})
	return out
}

func benchPolicyJobs() []policy.JobInfo {
	jobs := make([]policy.JobInfo, 8)
	for ji := range jobs {
		hosts := make([]policy.HostInfo, 16)
		for hi := range hosts {
			role := bsp.Critical
			if hi%4 == 3 {
				role = bsp.Waiting
			}
			hosts[hi] = policy.HostInfo{Role: role, Min: 68, Max: 120}
		}
		spread := units.Power(ji * 3)
		jobs[ji] = policy.JobInfo{
			ID:    string(rune('a' + ji)),
			Hosts: hosts,
			Char: charz.Entry{
				Hosts:               16,
				MonitorHostPower:    95 - spread,
				MonitorMaxHostPower: 110 - spread,
				MonitorCriticalPwr:  108 - spread,
				MonitorWaitingPwr:   80 - spread,
				NeededCritical:      100 - spread,
				NeededWaiting:       72,
				NeededMin:           70,
				NeededMax:           100 - spread,
				NeededMean:          88 - spread,
			},
		}
	}
	return jobs
}
