// Command characterize runs the workload characterization of Section IV-B
// and the hardware-variation survey of Section V-A2:
//
//   - the Figure 4 heatmap (uncapped power under the GEOPM monitor agent),
//   - the Figure 5 heatmap (power under the GEOPM power balancer at a TDP
//     budget), and
//   - the Figure 6 achieved-frequency clustering of the full node
//     population under 70 W caps.
//
// The characterization database can be saved for cmd/experiments to reuse.
//
// Usage:
//
//	characterize [-nodes N] [-vector ymm] [-variation] [-cluster N]
//	             [-iters N] [-seed N] [-out db.json] [-catalog]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"powerstack/internal/charz"
	"powerstack/internal/cluster"
	"powerstack/internal/cpumodel"
	"powerstack/internal/kernel"
	"powerstack/internal/report"
	"powerstack/internal/stats"
	"powerstack/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")
	nNodes := flag.Int("nodes", 16, "test nodes per characterization run (the paper uses 100)")
	vecName := flag.String("vector", "ymm", "vector width of the heatmap grid (scalar, xmm, ymm)")
	variation := flag.Bool("variation", false, "run the Figure 6 hardware-variation survey instead")
	clusterSize := flag.Int("cluster", 2000, "node population for the variation survey")
	iters := flag.Int("iters", 40, "balancer iterations per configuration")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("out", "", "write the characterization database to this JSON file")
	catalog := flag.Bool("catalog", false, "characterize the full Table II catalog instead of the heatmap grid")
	flag.Parse()

	if *variation {
		runVariationSurvey(*clusterSize, *seed)
		return
	}

	var vec kernel.Vector
	switch *vecName {
	case "scalar":
		vec = kernel.Scalar
	case "xmm":
		vec = kernel.XMM
	case "ymm":
		vec = kernel.YMM
	default:
		log.Fatalf("unknown vector width %q", *vecName)
	}

	c, err := cluster.New(*nNodes, cpumodel.Quartz(), cpumodel.QuartzVariation(), *seed)
	if err != nil {
		log.Fatal(err)
	}
	opt := charz.Options{MonitorIters: 15, BalancerIters: *iters, Seed: *seed, NoiseSigma: -1}

	var configs []kernel.Config
	if *catalog {
		configs = workload.Catalog()
	} else {
		for _, row := range kernel.HeatmapConfigs(vec) {
			configs = append(configs, row...)
		}
	}
	log.Printf("characterizing %d configurations on %d nodes", len(configs), *nNodes)
	db, err := charz.CharacterizeAll(context.Background(), configs, c.Nodes(), opt)
	if err != nil {
		log.Fatal(err)
	}

	if !*catalog {
		printHeatmaps(db, vec)
	} else {
		fmt.Printf("characterized %d catalog configurations\n", db.Len())
	}

	if *out != "" {
		if err := db.SaveFile(*out); err != nil {
			log.Fatal(err)
		}
		log.Printf("database written to %s", *out)
	}
}

// printHeatmaps renders the Figure 4 and Figure 5 grids.
func printHeatmaps(db *charz.DB, vec kernel.Vector) {
	rows := kernel.HeatmapIntensities()
	cols := kernel.HeatmapColumns()
	rowNames := make([]string, len(rows))
	for i, in := range rows {
		rowNames[i] = fmt.Sprintf("%g", in)
	}
	colNames := make([]string, len(cols))
	for j, c := range cols {
		colNames[j] = c.Label()
	}

	build := func(pick func(charz.Entry) float64) [][]float64 {
		vals := make([][]float64, len(rows))
		for i, in := range rows {
			vals[i] = make([]float64, len(cols))
			for j, col := range cols {
				cfg := kernel.Config{Intensity: in, Vector: vec, WaitingPct: col.WaitingPct, Imbalance: col.Imbalance}
				e, ok := db.Get(cfg)
				if !ok {
					continue
				}
				vals[i][j] = pick(e)
			}
		}
		return vals
	}

	fig4 := report.Heatmap{
		Title:    fmt.Sprintf("Figure 4: CPU power per node (W), %s, monitor agent, no power limit", vec),
		RowLabel: "FLOPs/B",
		RowNames: rowNames, ColNames: colNames,
		Values: build(func(e charz.Entry) float64 { return e.MonitorHostPower.Watts() }),
		Format: "%5.0f", CellWidth: 9,
	}
	fig5 := report.Heatmap{
		Title:    fmt.Sprintf("Figure 5: CPU power per node (W), %s, power balancer at TDP budget", vec),
		RowLabel: "FLOPs/B",
		RowNames: rowNames, ColNames: colNames,
		Values: build(func(e charz.Entry) float64 { return e.BalancerHostPower.Watts() }),
		Format: "%5.0f", CellWidth: 9,
	}
	fmt.Println(fig4.String())
	fmt.Println(fig5.String())
}

// runVariationSurvey reproduces Figure 6.
func runVariationSurvey(size int, seed uint64) {
	log.Printf("surveying %d nodes under %v per-socket caps", size, cluster.SurveyCap)
	c, err := cluster.New(size, cpumodel.Quartz(), cpumodel.QuartzVariation(), seed)
	if err != nil {
		log.Fatal(err)
	}
	freqs, err := c.FrequencySurvey(cluster.SurveyWorkload(), cluster.SurveyCap, 3)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cluster.Partition(freqs, 3)
	if err != nil {
		log.Fatal(err)
	}

	counts, edges := stats.Histogram(freqs, 16)
	hist := report.Histogram{
		Title:  "Figure 6: achieved frequency (GHz) under 70 W caps",
		Edges:  edges,
		Counts: counts,
	}
	fmt.Fprint(os.Stdout, hist.String())

	names := []string{"low", "medium", "high"}
	tb := report.NewTable("\nFrequency clusters (k-means, k=3)", "Cluster", "Nodes", "Centroid (GHz)")
	for i := range cl.Centroids {
		tb.AddRow(names[i], fmt.Sprintf("%d", cl.Sizes[i]), fmt.Sprintf("%.3f", cl.Centroids[i]))
	}
	fmt.Print(tb.String())
	fmt.Printf("\npaper reference: low n=522, medium n=918, high n=560 of 2000\n")
}
