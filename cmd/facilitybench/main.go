// Command facilitybench times the facility simulation's two cores — the
// fixed-tick loop and the discrete-event engine — on the same machine-room
// scenario and writes the comparison to a JSON file, so the perf
// trajectory of the event engine is tracked in-repo from run to run.
//
// The default scenario is the regime the event engine exists for: a large
// pool (1000 nodes) simulated for a long span (30 days) under light load,
// where the tick core burns a real BSP iteration per running job every 30
// seconds of virtual time while the event core only touches jobs when
// something actually happens.
//
// Usage:
//
//	facilitybench [-nodes 1000] [-days 30] [-tick 30s] [-telemetry 4h]
//	              [-interarrival 4h] [-seed 7] [-out BENCH_facility.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"powerstack/internal/charz"
	"powerstack/internal/cluster"
	"powerstack/internal/cpumodel"
	"powerstack/internal/facility"
	"powerstack/internal/kernel"
	"powerstack/internal/node"
	"powerstack/internal/policy"
	"powerstack/internal/units"
)

type engineReport struct {
	NsPerOp          int64   `json:"ns_per_op"`
	Seconds          float64 `json:"seconds"`
	EventsDispatched int     `json:"events_dispatched"`
	TicksSimulated   int     `json:"ticks_simulated"`
	Submitted        int     `json:"submitted"`
	Completed        int     `json:"completed"`
	TotalEnergyJ     float64 `json:"total_energy_joules"`
}

type report struct {
	Nodes             int          `json:"nodes"`
	DurationHours     float64      `json:"duration_hours"`
	TickSeconds       float64      `json:"tick_seconds"`
	TelemetrySeconds  float64      `json:"telemetry_every_seconds"`
	InterarrivalHours float64      `json:"interarrival_hours"`
	Seed              uint64       `json:"seed"`
	Tick              engineReport `json:"tick"`
	Event             engineReport `json:"event"`
	Speedup           float64      `json:"speedup"`
}

func env(nNodes int) ([]*node.Node, *charz.DB, []kernel.Config, error) {
	c, err := cluster.New(nNodes+4, cpumodel.Quartz(), cpumodel.QuartzVariation(), 41)
	if err != nil {
		return nil, nil, nil, err
	}
	scratch := c.Nodes()[nNodes:]
	workloads := []kernel.Config{
		{Intensity: 8, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 0.5, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 2},
		{Intensity: 32, Vector: kernel.XMM, Imbalance: 1},
	}
	db, err := charz.CharacterizeAll(context.Background(), workloads, scratch, charz.Options{
		MonitorIters: 5, BalancerIters: 30, Seed: 3, NoiseSigma: 0,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return c.Nodes()[:nNodes], db, workloads, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("facilitybench: ")
	nNodes := flag.Int("nodes", 1000, "cluster size")
	days := flag.Float64("days", 30, "simulated span in days")
	tick := flag.Duration("tick", 30*time.Second, "tick-engine step (and event-engine horizon quantum)")
	telemetry := flag.Duration("telemetry", 4*time.Hour, "telemetry sampling cadence")
	interarrival := flag.Duration("interarrival", 4*time.Hour, "mean job inter-arrival time")
	seed := flag.Uint64("seed", 7, "random seed")
	out := flag.String("out", "BENCH_facility.json", "output JSON path")
	flag.Parse()

	rep := report{
		Nodes:             *nNodes,
		DurationHours:     *days * 24,
		TickSeconds:       tick.Seconds(),
		TelemetrySeconds:  telemetry.Seconds(),
		InterarrivalHours: interarrival.Hours(),
		Seed:              *seed,
	}
	duration := time.Duration(*days * 24 * float64(time.Hour))
	for _, eng := range []string{facility.EngineTick, facility.EngineEvent} {
		// Fresh pool per run: the simulation mutates node state.
		nodes, db, workloads, err := env(*nNodes)
		if err != nil {
			log.Fatal(err)
		}
		cfg := facility.Config{
			Engine:           eng,
			Nodes:            nodes,
			DB:               db,
			Policy:           policy.MixedAdaptive{},
			SystemBudget:     units.Power(*nNodes) * 200 * units.Watt,
			MeanInterarrival: *interarrival,
			// Long jobs: roughly half a day of 50ms iterations, so the
			// tick core pays a real probe iteration per job per tick for
			// tens of thousands of ticks.
			MinJobIterations: 700000,
			MaxJobIterations: 1000000,
			JobSizes:         []int{2, 4, 8},
			Workloads:        workloads,
			Duration:         duration,
			Tick:             *tick,
			TelemetryEvery:   *telemetry,
			Seed:             *seed,
		}
		log.Printf("%s engine: %d nodes, %v...", eng, *nNodes, duration)
		start := time.Now()
		res, err := facility.Run(context.Background(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		er := engineReport{
			NsPerOp:          wall.Nanoseconds(),
			Seconds:          wall.Seconds(),
			EventsDispatched: res.EventsDispatched,
			TicksSimulated:   res.TicksSimulated,
			Submitted:        res.Submitted,
			Completed:        res.Completed,
			TotalEnergyJ:     res.TotalEnergy.Joules(),
		}
		log.Printf("%s engine: %v wall, %d events, %d ticks, %d/%d jobs completed",
			eng, wall.Round(time.Millisecond), er.EventsDispatched, er.TicksSimulated, er.Completed, er.Submitted)
		if eng == facility.EngineTick {
			rep.Tick = er
		} else {
			rep.Event = er
		}
	}
	if rep.Event.NsPerOp > 0 {
		rep.Speedup = float64(rep.Tick.NsPerOp) / float64(rep.Event.NsPerOp)
	}
	log.Printf("speedup: %.2fx", rep.Speedup)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
