// Command campaign runs a multi-seed facility sweep: a scenario matrix
// (seeds × interarrival rates × budgets × policies × optional fault lanes)
// fanned across a bounded worker pool, with per-group statistics (mean,
// bootstrap 95% CI) and Welch policy comparisons in the report. The
// serialized report is byte-identical at any -parallel setting.
//
// Characterization runs once through a process-wide cache; with -cachefile
// the cache persists across invocations, so repeat campaigns on the same
// platform skip characterization entirely.
//
// Usage:
//
//	campaign [-nodes N] [-hours H] [-engine event|tick] [-seeds N]
//	         [-interarrivals 30m,45m] [-budgets "4 kW,6 kW"]
//	         [-policies all|StaticCaps,MixedAdaptive] [-parallel N]
//	         [-cachefile charz.json] [-format json|csv] [-out report.json]
//	         [-crashes N] [-msrfaults N] [-dropouts N] [-slownodes N]
//	         [-budgetdrops N] [-faultseed N]
//	         [-shockat 2h] [-shockfrac 0.5] [-shockdur 1h]
//	         [-emergencies preempt,throttle,kill] [-checkpoint K]
//	         [-flightdir flights/] [-debug addr]
//	         [-shard i/n] [-merge shard0.json,shard1.json]
//
// Chaos flags add a "chaos" fault lane next to the default "clean" lane, so
// every policy is ranked under both.
//
// Shock flags add a "shock" budget-drop lane: at -shockat the facility
// budget drops to -shockfrac of its value for -shockdur. Combined with
// -emergencies (a sweep of the budget-emergency response), every response
// runs the identical shock on the identical seeds, and the report's
// emergency comparisons rank preempt vs throttle vs kill with seed-paired
// t tests. -checkpoint sets the jobs' checkpoint cadence in iterations.
//
// -flightdir enables the flight recorder: every failed scenario, and every
// successful one whose result looks anomalous (quarantines or requeues),
// writes a self-contained post-mortem artifact into the directory. Inspect
// artifacts with "obsdump flight". Flight capture never alters the report.
//
// -shard i/n runs only the scenarios whose matrix index ≡ i (mod n) and
// writes a partial report; run all n shards (identical flags except -shard)
// on separate machines, then join them with -merge — the merged report is
// byte-identical to a single-process run of the full matrix.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"powerstack"
	"powerstack/internal/cliconf"
	"powerstack/internal/kernel"
	"powerstack/internal/units"
	"powerstack/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaign: ")
	nNodes := flag.Int("nodes", 16, "cluster size")
	hours := flag.Float64("hours", 8, "simulated span in hours")
	engineName := flag.String("engine", powerstack.FacilityEngineEvent, "simulation core: event or tick")
	seeds := flag.Int("seeds", 5, "replications per scenario cell (seeds 1..N)")
	interarrivals := flag.String("interarrivals", "30m", "comma-separated mean job inter-arrival times")
	budgets := flag.String("budgets", "", "comma-separated system budgets (e.g. \"4 kW,6 kW\"; default 240 W/node)")
	policies := flag.String("policies", "all", "comma-separated policy names, or \"all\"")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS); the report is identical at any setting")
	cacheFile := flag.String("cachefile", "", "characterization cache path (loaded if present, saved after)")
	format := flag.String("format", "json", "report format: json or csv")
	outPath := flag.String("out", "", "report destination (default stdout)")
	faultFlags := cliconf.RegisterFaults(flag.CommandLine)
	shockAt := flag.Duration("shockat", 0, "shock lane: budget-drop onset (0 disables the lane)")
	shockFrac := flag.Float64("shockfrac", 0.5, "shock lane: fraction of the budget kept during the drop")
	shockDur := flag.Duration("shockdur", 0, "shock lane: drop duration (0 = until the end of the run)")
	emergencies := flag.String("emergencies", "", "comma-separated budget-emergency responses to sweep (e.g. preempt,throttle,kill)")
	checkpoint := flag.Int("checkpoint", workload.CheckpointInterval(2000, 20000), "job checkpoint cadence in iterations (0 disables)")
	flightDir := flag.String("flightdir", "", "write flight-recorder artifacts for failed/anomalous scenarios here")
	debugAddr := flag.String("debug", "", "serve the live debug surface (/metrics, /stream/*, pprof) here during the sweep (\":0\" picks a port)")
	shardSpec := flag.String("shard", "", "run one shard of the matrix, as \"i/n\" (shard i of n); the partial report merges with -merge")
	mergePaths := flag.String("merge", "", "merge comma-separated shard report files into the full report (no simulation)")
	flag.Parse()
	ctx := context.Background()

	if *mergePaths != "" {
		if err := mergeReports(*mergePaths, *outPath, *format); err != nil {
			log.Fatal(err)
		}
		return
	}
	shard, shards, err := parseShard(*shardSpec)
	if err != nil {
		log.Fatal(err)
	}

	if *seeds <= 0 {
		log.Fatal("-seeds must be positive")
	}
	pols, err := parsePolicies(*policies)
	if err != nil {
		log.Fatal(err)
	}
	ias, err := parseDurations(*interarrivals)
	if err != nil {
		log.Fatal(err)
	}
	var buds []units.Power
	if *budgets == "" {
		buds = []units.Power{units.Power(*nNodes) * 240 * units.Watt}
	} else if buds, err = parsePowers(*budgets); err != nil {
		log.Fatal(err)
	}

	sys, err := powerstack.NewSystem(powerstack.Options{ClusterSize: *nNodes + 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if *debugAddr != "" {
		srv, err := sys.ServeDebug(ctx, *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug surface on http://%s", srv.Addr())
		defer func() {
			drain, cancel := context.WithTimeout(ctx, 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(drain); err != nil {
				log.Printf("debug drain: %v", err)
			}
		}()
	}
	workloads := []kernel.Config{
		{Intensity: 0.25, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 8, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 32, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 1, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 2},
		{Intensity: 16, Vector: kernel.YMM, WaitingPct: 75, Imbalance: 3},
		{Intensity: 8, Vector: kernel.XMM, Imbalance: 1},
	}

	cache := powerstack.NewCharacterizationCache()
	if *cacheFile != "" {
		if loaded, err := powerstack.LoadCharacterizationCache(*cacheFile); err == nil {
			cache = loaded
			log.Printf("loaded characterization cache (%d entries) from %s", cache.Len(), *cacheFile)
		} else if !os.IsNotExist(err) {
			log.Fatal(err)
		}
	}
	log.Printf("characterizing %d workloads...", len(workloads))
	start := time.Now()
	if err := sys.CharacterizeCached(ctx, workloads, powerstack.QuickCharacterization(), cache); err != nil {
		log.Fatal(err)
	}
	hits, misses := cache.Stats()
	log.Printf("characterization done in %v (%d cache hits, %d misses)",
		time.Since(start).Round(time.Millisecond), hits, misses)
	if *cacheFile != "" {
		if err := cache.SaveFile(*cacheFile); err != nil {
			log.Fatal(err)
		}
	}

	var jobSizes []int
	for _, sz := range []int{2, 4, 8, 16} {
		if sz <= *nNodes {
			jobSizes = append(jobSizes, sz)
		}
	}

	duration := time.Duration(*hours * float64(time.Hour))
	cfg := powerstack.CampaignConfig{
		Base: powerstack.FacilityConfig{
			Engine:           *engineName,
			MinJobIterations: 2000,
			MaxJobIterations: 20000,
			JobSizes:         jobSizes,
			Workloads:        workloads,
			Duration:         duration,
			Tick:             time.Minute,
			CheckpointEvery:  *checkpoint,
		},
		Interarrivals: ias,
		Budgets:       buds,
		Policies:      pols,
		Parallelism:   *parallel,
		Shard:         shard,
		Shards:        shards,
		FlightDir:     *flightDir,
	}
	if *emergencies != "" {
		for _, name := range strings.Split(*emergencies, ",") {
			cfg.Emergencies = append(cfg.Emergencies, powerstack.EmergencyPolicy(strings.TrimSpace(name)))
		}
	}
	if *flightDir != "" {
		// Flight artifacts capture the sink's metrics/journal/spans at the
		// moment of failure; without a sink they would be near-empty.
		sys.EnableObservability()
	}
	for s := 1; s <= *seeds; s++ {
		cfg.Seeds = append(cfg.Seeds, uint64(s))
	}
	if faultFlags.Any() {
		var ids []string
		for _, n := range sys.Pool {
			ids = append(ids, n.ID)
		}
		plan := faultFlags.Plan(ids, duration)
		cfg.FaultPlans = []powerstack.CampaignFaultPlan{{Name: "clean"}, {Name: "chaos", Plan: plan}}
	}
	if *shockAt > 0 {
		if len(cfg.FaultPlans) == 0 {
			cfg.FaultPlans = []powerstack.CampaignFaultPlan{{Name: "clean"}}
		}
		cfg.FaultPlans = append(cfg.FaultPlans, powerstack.CampaignFaultPlan{
			Name: "shock",
			Plan: &powerstack.FaultPlan{Injections: []powerstack.FaultInjection{{
				Kind:     powerstack.FaultBudgetDrop,
				At:       *shockAt,
				Duration: *shockDur,
				Factor:   *shockFrac,
			}}},
		})
	}

	nScen := len(cfg.Seeds) * len(ias) * len(buds) * len(pols)
	if len(cfg.FaultPlans) > 0 {
		nScen *= len(cfg.FaultPlans)
	}
	if len(cfg.Emergencies) > 0 {
		nScen *= len(cfg.Emergencies)
	}
	if shards > 1 {
		log.Printf("running shard %d/%d of %d scenarios over %d nodes (%v each)...", shard, shards, nScen, len(sys.Pool), duration)
	} else {
		log.Printf("running %d scenarios over %d nodes (%v each)...", nScen, len(sys.Pool), duration)
	}
	start = time.Now()
	rep, err := sys.RunCampaign(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("campaign done in %v wall time", time.Since(start).Round(time.Millisecond))

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		err = rep.WriteJSON(w)
	case "csv":
		err = rep.WriteCSV(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}

	for _, g := range rep.Groups {
		log.Printf("%-16s ia=%-6s budget=%-8s fault=%-6s energy %.1f kJ ±%.1f  wait %.0fs  completed %.1f",
			g.Policy, g.Interarrival, g.Budget, g.Fault,
			g.Energy.Mean/1e3, g.Energy.CI95/1e3, g.QueueWait.Mean, g.Completed.Mean)
	}
	for _, c := range rep.Comparisons {
		mark := func(welch, paired bool) string {
			switch {
			case welch:
				return " (significant)"
			case paired:
				return " (significant paired)"
			}
			return ""
		}
		log.Printf("%s vs %s [ia=%s budget=%s fault=%s]: energy %+.1f%%%s, queue wait %+.1f%%%s",
			c.Policy, c.Baseline, c.Interarrival, c.Budget, c.Fault,
			100*c.EnergyChange, mark(c.EnergySignificant, c.EnergyPairedSignificant),
			100*c.QueueWaitChange, mark(c.QueueWaitSignificant, c.WaitPairedSignificant))
	}
	for _, e := range rep.EmergencyComparisons {
		mark := ""
		if e.CompletedPairedSignificant {
			mark = " (significant paired)"
		}
		log.Printf("emergency %s vs %s [%s fault=%s]: completed %+.1f%%%s, energy %+.1f%%, preempted %.1f, killed %.1f",
			e.Emergency, e.Baseline, e.Policy, e.Fault,
			100*e.CompletedChange, mark, 100*e.EnergyChange, e.MeanPreempted, e.MeanKilled)
	}
}

// parseShard parses an "i/n" shard spec; empty disables sharding.
func parseShard(s string) (shard, shards int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &shard, &shards); err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want \"i/n\"", s)
	}
	if shards < 2 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("-shard %q: want 0 <= i < n, n >= 2", s)
	}
	return shard, shards, nil
}

// mergeReports reads the shard report files and writes the merged full
// report — the byte-identical equivalent of one single-process run.
func mergeReports(paths, outPath, format string) error {
	var shards []*powerstack.CampaignReport
	for _, p := range strings.Split(paths, ",") {
		f, err := os.Open(strings.TrimSpace(p))
		if err != nil {
			return err
		}
		rep, err := powerstack.ReadCampaignReport(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		shards = append(shards, rep)
	}
	rep, err := powerstack.MergeCampaignReports(shards...)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	log.Printf("merged %d shard reports (%d scenarios)", len(shards), len(rep.Scenarios))
	switch format {
	case "json":
		return rep.WriteJSON(w)
	case "csv":
		return rep.WriteCSV(w)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func parsePolicies(s string) ([]powerstack.Policy, error) {
	if strings.EqualFold(s, "all") {
		return powerstack.Policies(), nil
	}
	var out []powerstack.Policy
	for _, name := range strings.Split(s, ",") {
		p, err := powerstack.PolicyByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func parseDurations(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, f := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func parsePowers(s string) ([]units.Power, error) {
	var out []units.Power
	for _, f := range strings.Split(s, ",") {
		p, err := units.ParsePower(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
