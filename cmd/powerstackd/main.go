// Command powerstackd is the power-management stack as a service: a
// long-running daemon hosting a facility simulation behind the versioned
// /v1 HTTP/JSON API (api/v1), with the obs debug surface (metrics,
// journal, traces, pprof) mounted on the same listener. Where cmd/facility
// runs a batch simulation to its horizon and exits, powerstackd paces the
// same re-entrant event core against the wall clock and accepts work over
// the wire: multi-tenant job submission under power quotas, live budget
// steps (with the full emergency preempt/throttle/kill machinery), live
// policy swaps, job and instance status, and SSE telemetry/event streams.
//
// Usage:
//
//	powerstackd [-addr localhost:8080] [-nodes N] [-policy MixedAdaptive]
//	            [-engine event|tick] [-hours H] [-speedup X] [-quantum D]
//	            [-tick D] [-telemetry D] [-seed N]
//	            [-budget "12 kW"] [-budgetsteps "2h=8 kW"] [-emergency preempt]
//	            [-checkpoint K] [-tenants "acme=600 W,beta=1 kW"]
//	            [-interarrival D]
//	            [-crashes N] [-msrfaults N] [-dropouts N] [-slownodes N]
//	            [-budgetdrops N] [-faultseed N]
//	            [-metrics path] [-trace path] [-spans path] [-events path]
//
// -speedup sets the pacer's virtual-to-wall ratio (60 = one virtual minute
// per wall second); -quantum the virtual span advanced per pacer beat
// (default: one tick). -tenants installs power-quota admission partitions
// at boot (they can also be managed live via POST /v1/tenants).
//
// By default the Poisson arrival process is off and every job arrives via
// POST /v1/submit; -interarrival > 0 turns synthetic background traffic
// back on alongside external submissions. Chaos flags inject the usual
// deterministic fault plan into the hosted world — a service under crash
// and dropout chaos is the interesting demo.
//
// On SIGINT/SIGTERM the daemon drains HTTP (SSE clients included),
// finalizes the instance, prints the run summary, and dumps any requested
// observability artifacts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"powerstack"
	"powerstack/internal/cliconf"
	"powerstack/internal/facility"
	"powerstack/internal/kernel"
	"powerstack/internal/obs"
	"powerstack/internal/service"
	"powerstack/internal/units"
	"powerstack/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powerstackd: ")
	addr := flag.String("addr", "localhost:8080", "listen address (\":0\" picks a free port)")
	nNodes := flag.Int("nodes", 16, "cluster size")
	policyName := flag.String("policy", "MixedAdaptive", "initial power policy (swap live via POST /v1/policy)")
	engineName := flag.String("engine", powerstack.FacilityEngineEvent, "simulation core: event or tick")
	hours := flag.Float64("hours", 168, "virtual horizon in hours")
	speedup := flag.Float64("speedup", 60, "pacer ratio: virtual seconds per wall second")
	quantum := flag.Duration("quantum", 0, "virtual span per pacer beat (default: one tick)")
	tick := flag.Duration("tick", time.Minute, "scheduling tick")
	telemetry := flag.Duration("telemetry", 0, "telemetry sampling cadence (default: one sample per tick)")
	seed := flag.Uint64("seed", 1, "random seed")
	interarrival := flag.Duration("interarrival", 0, "mean arrival gap of synthetic background traffic (0 = external submissions only)")
	tenants := flag.String("tenants", "", "boot-time tenant quotas: comma-separated name=power pairs (e.g. \"acme=600 W,beta=1 kW\")")
	budgetFlags := cliconf.RegisterBudget(flag.CommandLine, workload.CheckpointInterval(2000, 20000))
	faultFlags := cliconf.RegisterFaults(flag.CommandLine)
	artifacts := cliconf.RegisterArtifacts(flag.CommandLine)
	flag.Parse()
	ctx := context.Background()

	pol, err := powerstack.PolicyByName(*policyName)
	if err != nil {
		log.Fatal(err)
	}
	budget, err := budgetFlags.Power(units.Power(*nNodes) * 200 * units.Watt)
	if err != nil {
		log.Fatal(err)
	}
	steps, err := budgetFlags.Steps()
	if err != nil {
		log.Fatal(err)
	}
	quotas, err := parseTenants(*tenants)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := powerstack.NewSystem(powerstack.Options{ClusterSize: *nNodes + 8, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	workloads := []kernel.Config{
		{Intensity: 0.25, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 8, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 32, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 1, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 2},
		{Intensity: 16, Vector: kernel.YMM, WaitingPct: 75, Imbalance: 3},
		{Intensity: 8, Vector: kernel.XMM, Imbalance: 1},
	}
	log.Printf("characterizing %d workloads...", len(workloads))
	if err := sys.Characterize(ctx, workloads, powerstack.QuickCharacterization()); err != nil {
		log.Fatal(err)
	}
	sink := sys.EnableObservability()

	duration := time.Duration(*hours * float64(time.Hour))
	cfg := facility.Config{
		Nodes:           sys.Pool,
		DB:              sys.DB,
		Policy:          pol,
		SystemBudget:    budget,
		BudgetSteps:     steps,
		Emergency:       facility.EmergencyPolicy(budgetFlags.Emergency),
		CheckpointEvery: budgetFlags.Checkpoint,
		DisableArrivals: *interarrival <= 0,
		Duration:        duration,
		Tick:            *tick,
		TelemetryEvery:  *telemetry,
		Engine:          *engineName,
		Seed:            *seed,
		Obs:             sink,
	}
	if *interarrival > 0 {
		cfg.MeanInterarrival = *interarrival
		cfg.MinJobIterations = 2000
		cfg.MaxJobIterations = 20000
		cfg.JobSizes = []int{2, 4, 8}
		cfg.Workloads = workloads
	}
	if faultFlags.Any() {
		var ids []string
		for _, n := range sys.Pool {
			ids = append(ids, n.ID)
		}
		cfg.Faults = faultFlags.Plan(ids, duration)
		log.Printf("fault plan: %s", faultFlags)
	}

	host := service.NewHost(sink)
	if err := host.Add(service.InstanceConfig{
		Name: "main", Facility: cfg, Speedup: *speedup, Quantum: *quantum,
	}); err != nil {
		log.Fatal(err)
	}
	for _, q := range quotas {
		if err := host.SetTenantQuota("main", q.name, q.quota); err != nil {
			log.Fatal(err)
		}
		log.Printf("tenant %s: quota %v", q.name, q.quota)
	}

	srv, err := obs.ServeHandler(*addr, host.Handler())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving /v1 on http://%s (%d nodes, %v budget, %s policy, %gx speedup, horizon %v)",
		srv.Addr(), len(sys.Pool), budget, pol.Name(), *speedup, duration)

	sigCtx, stop := signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-sigCtx.Done()
	log.Print("shutting down...")

	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("http drain: %v", err)
	}
	if err := host.Shutdown(drainCtx); err != nil {
		log.Printf("instance close: %v", err)
	}
	if res, err := host.Result("main"); err == nil {
		fmt.Printf("jobs:  %d submitted, %d started, %d completed, %d rejected\n",
			res.Submitted, res.Started, res.Completed, res.Rejected)
		if res.BudgetChanges > 0 {
			fmt.Printf("budget: %d changes, %d preempted, %d killed, %d resumed\n",
				res.BudgetChanges, res.Preempted, res.Killed, res.Resumed)
		}
	}
	if artifacts.Enabled() {
		if err := artifacts.Dump(sink); err != nil {
			log.Fatal(err)
		}
	}
}

type tenantQuota struct {
	name  string
	quota units.Power
}

// parseTenants parses the boot-time quota list, e.g. "acme=600 W,beta=1 kW".
func parseTenants(s string) ([]tenantQuota, error) {
	if s == "" {
		return nil, nil
	}
	var out []tenantQuota
	for _, part := range strings.Split(s, ",") {
		name, power, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("tenant quota %q: want name=power", part)
		}
		p, err := units.ParsePower(strings.TrimSpace(power))
		if err != nil {
			return nil, fmt.Errorf("tenant quota %q: %w", part, err)
		}
		out = append(out, tenantQuota{name: strings.TrimSpace(name), quota: p})
	}
	return out, nil
}
