package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// cmdHist reads a Prometheus text exposition (obsdump -metrics, the
// /metrics endpoint, or a flight artifact's metrics.txt) and prints a
// per-series quantile summary for every histogram family: count, sum,
// mean, and interpolated p50/p90/p99 recovered from the cumulative
// buckets. Non-histogram families are ignored.
func cmdHist(args []string) {
	fs := flag.NewFlagSet("obsdump hist", flag.ExitOnError)
	in := fs.String("in", "-", "Prometheus text metrics to read (- = stdin)")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	r := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close() //nolint:errcheck // read-only
		r = f
	}
	series, order, err := parseHistograms(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(order) == 0 {
		fmt.Println("no histogram series")
		return
	}
	for _, key := range order {
		h := series[key]
		mean := math.NaN()
		if h.count > 0 {
			mean = h.sum / h.count
		}
		fmt.Printf("%s count=%g sum=%g mean=%g p50=%g p90=%g p99=%g\n",
			key, h.count, h.sum, mean,
			h.quantile(0.50), h.quantile(0.90), h.quantile(0.99))
	}
}

// histBucket is one cumulative bucket: observations <= le.
type histBucket struct {
	le    float64
	count float64
}

// histSeries accumulates one labeled histogram series across its
// _bucket/_sum/_count sample lines.
type histSeries struct {
	buckets []histBucket
	sum     float64
	count   float64
}

// quantile mirrors the in-process Histogram.Quantile: linear
// interpolation within the bucket the q-th observation falls in, with the
// +Inf bucket collapsing to the highest finite bound.
func (h *histSeries) quantile(q float64) float64 {
	sort.Slice(h.buckets, func(i, j int) bool { return h.buckets[i].le < h.buckets[j].le })
	if len(h.buckets) == 0 {
		return math.NaN()
	}
	total := h.buckets[len(h.buckets)-1].count
	if total == 0 {
		return math.NaN()
	}
	rank := q * total
	lower, prevCum := 0.0, 0.0
	for _, b := range h.buckets {
		if b.count >= rank {
			if math.IsInf(b.le, 1) {
				return lower
			}
			inBucket := b.count - prevCum
			if inBucket <= 0 {
				return b.le
			}
			return lower + (b.le-lower)*(rank-prevCum)/inBucket
		}
		if !math.IsInf(b.le, 1) {
			lower = b.le
		}
		prevCum = b.count
	}
	return lower
}

// parseHistograms scans Prometheus text exposition and collects every
// histogram series, keyed by "family{labels}" with the le label stripped.
// order preserves first-appearance order for stable output.
func parseHistograms(r io.Reader) (map[string]*histSeries, []string, error) {
	series := map[string]*histSeries{}
	var order []string
	get := func(key string) *histSeries {
		h, ok := series[key]
		if !ok {
			h = &histSeries{}
			series[key] = h
			order = append(order, key)
		}
		return h
	}

	histFamilies := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if fields := strings.Fields(line); len(fields) >= 4 && fields[1] == "TYPE" && fields[3] == "histogram" {
				histFamilies[fields[2]] = true
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, nil, fmt.Errorf("obsdump hist: %w (line %q)", err, line)
		}
		var family, suffix string
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, s) {
				family, suffix = strings.TrimSuffix(name, s), s
				break
			}
		}
		if suffix == "" || !histFamilies[family] {
			continue
		}
		le, rest := splitLE(labels)
		key := family
		if len(rest) > 0 {
			key += "{" + strings.Join(rest, ",") + "}"
		}
		switch suffix {
		case "_bucket":
			bound, err := parseLE(le)
			if err != nil {
				return nil, nil, fmt.Errorf("obsdump hist: bad le %q", le)
			}
			get(key).buckets = append(get(key).buckets, histBucket{le: bound, count: value})
		case "_sum":
			get(key).sum = value
		case "_count":
			get(key).count = value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return series, order, nil
}

// parseSample splits one exposition line into name, raw label pairs, and
// the sample value.
func parseSample(line string) (name string, labels []string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		body, tail, ok := scanLabelBody(rest[i+1:])
		if !ok {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		labels = body
		rest = strings.TrimSpace(tail)
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", nil, 0, fmt.Errorf("malformed sample")
		}
		name, rest = fields[0], fields[1]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", nil, 0, fmt.Errorf("missing value")
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, err
	}
	return name, labels, value, nil
}

// scanLabelBody consumes `key="value",...}` honoring \" escapes inside
// quoted values, returning the label pairs and the text after the brace.
func scanLabelBody(s string) (labels []string, tail string, ok bool) {
	var cur strings.Builder
	inQuote, escaped := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			cur.WriteByte(c)
			escaped = false
		case inQuote && c == '\\':
			cur.WriteByte(c)
			escaped = true
		case c == '"':
			cur.WriteByte(c)
			inQuote = !inQuote
		case !inQuote && c == ',':
			if cur.Len() > 0 {
				labels = append(labels, cur.String())
				cur.Reset()
			}
		case !inQuote && c == '}':
			if cur.Len() > 0 {
				labels = append(labels, cur.String())
			}
			return labels, s[i+1:], true
		default:
			cur.WriteByte(c)
		}
	}
	return nil, "", false
}

// splitLE strips the le pair from a label list, returning its raw value
// and the remaining pairs.
func splitLE(labels []string) (le string, rest []string) {
	for _, l := range labels {
		if v, ok := strings.CutPrefix(l, "le="); ok {
			le = strings.Trim(v, `"`)
			continue
		}
		rest = append(rest, l)
	}
	return le, rest
}

// parseLE parses a bucket bound, accepting the +Inf spelling.
func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}
