package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"powerstack/internal/obs"
)

// cmdSpans renders a JSONL span log (obsdump -spans, /spans endpoint, or a
// flight artifact unpacked with obsdump flight -dir) as an indented tree:
// one tree per trace, children nested under their parent span and ordered
// by wall-clock start, so the printout mirrors the causal structure the
// Chrome trace shows graphically.
func cmdSpans(args []string) {
	fs := flag.NewFlagSet("obsdump spans", flag.ExitOnError)
	in := fs.String("in", "-", "span log JSONL to read (- = stdin)")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	r := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close() //nolint:errcheck // read-only
		r = f
	}
	spans, err := obs.ReadSpansJSONL(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(spans) == 0 {
		fmt.Println("no spans")
		return
	}
	renderSpanTrees(os.Stdout, spans)
}

// renderSpanTrees groups spans by trace and prints each trace's tree.
func renderSpanTrees(w io.Writer, spans []obs.SpanRecord) {
	byTrace := map[obs.TraceID][]obs.SpanRecord{}
	var traces []obs.TraceID
	for _, sp := range spans {
		if _, ok := byTrace[sp.Trace]; !ok {
			traces = append(traces, sp.Trace)
		}
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i] < traces[j] })

	for _, tr := range traces {
		group := byTrace[tr]
		fmt.Fprintf(w, "trace %d (%d spans)\n", tr, len(group))

		children := map[obs.SpanID][]obs.SpanRecord{}
		ids := map[obs.SpanID]bool{}
		for _, sp := range group {
			ids[sp.ID] = true
		}
		var roots []obs.SpanRecord
		for _, sp := range group {
			// A span whose parent never made it into the log (ring
			// wraparound, still open elsewhere) renders as a root.
			if sp.Parent != 0 && ids[sp.Parent] {
				children[sp.Parent] = append(children[sp.Parent], sp)
			} else {
				roots = append(roots, sp)
			}
		}
		byWall := func(s []obs.SpanRecord) {
			sort.Slice(s, func(i, j int) bool {
				if s[i].Wall != s[j].Wall {
					return s[i].Wall < s[j].Wall
				}
				return s[i].ID < s[j].ID
			})
		}
		byWall(roots)
		for _, c := range children {
			byWall(c)
		}
		var walk func(sp obs.SpanRecord, depth int)
		walk = func(sp obs.SpanRecord, depth int) {
			fmt.Fprintf(w, "%s%s\n", strings.Repeat("  ", depth+1), describeSpan(sp))
			for _, c := range children[sp.ID] {
				walk(c, depth+1)
			}
		}
		for _, root := range roots {
			walk(root, 0)
		}
	}
}

// describeSpan formats one span as a single tree row.
func describeSpan(sp obs.SpanRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s", sp.Layer, sp.Name)
	if sp.Scope != "" {
		fmt.Fprintf(&b, " scope=%s", sp.Scope)
	}
	if sp.Host != "" {
		fmt.Fprintf(&b, " host=%s", sp.Host)
	}
	if sp.Iter != 0 {
		fmt.Fprintf(&b, " iter=%d", sp.Iter)
	}
	if sp.Value != 0 {
		fmt.Fprintf(&b, " value=%g", sp.Value)
	}
	fmt.Fprintf(&b, " wall=%s", sp.WallDur.Round(time.Microsecond))
	if sp.VStart != 0 || sp.VEnd != 0 {
		fmt.Fprintf(&b, " vt=[%s, %s]", sp.VStart, sp.VEnd)
	}
	if sp.Open {
		b.WriteString(" (open)")
	}
	return b.String()
}
