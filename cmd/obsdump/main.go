// Command obsdump exercises the full power management stack with
// observability enabled and dumps the resulting artifacts: a Prometheus
// text metrics snapshot, a Chrome trace_event JSON (open it in
// chrome://tracing or https://ui.perfetto.dev), and optionally the raw
// decision-event journal.
//
// The run drives every instrumented layer at once: two asymmetric jobs
// execute under the execution-time coordination protocol (grant and
// regrant events, balancer reallocations, RAPL limit writes) while a
// telemetry watchdog samples the node hierarchy and clamps offenders
// against a deliberately tight budget (violation and clamp events).
//
// Usage:
//
//	obsdump [-nodes 16] [-iters 30] [-budget 0.8] [-watchdog 0.9]
//	        [-metrics -] [-trace powerstack-trace.json] [-events path]
//	        [-spans path] [-serve localhost:6060] [-seed 1]
//
// Subcommands operate on previously written artifacts:
//
//	obsdump spans  [-in spans.jsonl]      render a span log as a tree
//	obsdump hist   [-in metrics.txt]      summarize histogram quantiles
//	obsdump flight [-dir out] flight.json unpack a flight-recorder artifact
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"time"

	"powerstack/internal/bsp"
	"powerstack/internal/cluster"
	"powerstack/internal/coordinator"
	"powerstack/internal/cpumodel"
	"powerstack/internal/kernel"
	"powerstack/internal/obs"
	"powerstack/internal/telemetry"
	"powerstack/internal/units"
	"powerstack/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("obsdump: ")
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "spans":
			cmdSpans(os.Args[2:])
			return
		case "hist":
			cmdHist(os.Args[2:])
			return
		case "flight":
			cmdFlight(os.Args[2:])
			return
		}
	}
	nodes := flag.Int("nodes", 16, "total nodes, split across the two demo jobs")
	iters := flag.Int("iters", 30, "bulk-synchronous iterations to run")
	budgetFrac := flag.Float64("budget", 0.8, "coordinator budget as a fraction of total TDP")
	watchdogFrac := flag.Float64("watchdog", 0.9, "watchdog budget as a fraction of the draw observed early in the run (<=0 disables the watchdog)")
	metricsPath := flag.String("metrics", "-", "write the Prometheus metrics snapshot here (- = stdout)")
	tracePath := flag.String("trace", "powerstack-trace.json", "write the Chrome trace JSON here (empty = skip)")
	eventsPath := flag.String("events", "", "also write the raw event journal JSON here")
	spansPath := flag.String("spans", "", "also write the span log JSONL here (render with obsdump spans)")
	serveAddr := flag.String("serve", "", "serve /metrics, /events, /trace, /debug/pprof on this address after the run and block")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	if *nodes < 4 || *nodes%2 != 0 {
		log.Fatalf("-nodes must be an even number >= 4, got %d", *nodes)
	}

	sink := obs.New()
	mix := workload.Mix{Name: "obsdump", Jobs: []workload.JobSpec{
		{ID: "waiting", Config: kernel.Config{Intensity: 4, Vector: kernel.YMM, WaitingPct: 75, Imbalance: 3}, Nodes: *nodes / 2},
		{ID: "bound", Config: kernel.Config{Intensity: 32, Vector: kernel.YMM, Imbalance: 1}, Nodes: *nodes / 2},
	}}

	c, err := cluster.New(*nodes, cpumodel.Quartz(), cpumodel.QuartzVariation(), *seed)
	if err != nil {
		log.Fatal(err)
	}
	pool := c.Nodes()
	for _, n := range pool {
		n.SetObs(sink)
	}

	var jobs []*bsp.Job
	rest := pool
	for i, js := range mix.Jobs {
		j, err := bsp.NewJob(js.ID, js.Config, rest[:js.Nodes], *seed+uint64(i)*31)
		if err != nil {
			log.Fatal(err)
		}
		rest = rest[js.Nodes:]
		jobs = append(jobs, j)
	}

	budget := units.Power(*budgetFrac) * cluster.TotalTDP(pool)
	coord, err := coordinator.New(budget, jobs, true)
	if err != nil {
		log.Fatal(err)
	}
	coord.SetObs(sink)

	// Root the demo's span tree so obsdump -spans output renders as one
	// trace: demo → per-iteration coord_iter spans.
	rootSpan := sink.StartSpan(obs.SpanContext{}, "obsdump", "demo").
		SetIter(*iters).SetValue(budget.Watts())
	coord.SpanParent = rootSpan.Ctx()

	// The watchdog samples the node hierarchy between iterations. Its
	// budget is derived from the draw observed early in the run so clamp
	// enforcement demonstrably fires regardless of scale.
	root, err := telemetry.BuildHierarchy(pool, 8, 1<<12)
	if err != nil {
		log.Fatal(err)
	}
	var wd *telemetry.Watchdog
	now := time.Now()
	if _, err := root.Sample(now); err != nil { // prime the energy trackers
		log.Fatal(err)
	}

	log.Printf("running %d iterations of mix %s on %d nodes under %v", *iters, mix.Name, *nodes, budget)
	start := time.Now()
	for k := 0; k < *iters; k++ {
		res, err := coord.Run(context.Background(), 1)
		if err != nil {
			log.Fatal(err)
		}
		// Advance simulated wall time by the iteration's elapsed time so
		// the watchdog sees the true mean power.
		now = now.Add(time.Duration(res.IterTimes[0] * float64(time.Second)))
		if wd == nil && *watchdogFrac > 0 && k == 1 {
			p, err := root.Sample(now)
			if err != nil {
				log.Fatal(err)
			}
			wd, err = telemetry.NewWatchdog(root, units.Power(float64(p)**watchdogFrac))
			if err != nil {
				log.Fatal(err)
			}
			wd.Obs = sink
			log.Printf("watchdog armed at %v (observed draw %v)", wd.Budget, p)
			continue
		}
		if wd != nil {
			if _, _, err := wd.Check(now); err != nil {
				log.Fatal(err)
			}
		}
	}
	rootSpan.End()
	log.Printf("run complete in %v", time.Since(start).Round(time.Millisecond))
	if wd != nil {
		log.Printf("watchdog: %d violations, %d clamps", wd.Violations, wd.Clamps)
	}
	log.Printf("journal: %d events recorded (%d retained, %d dropped)",
		sink.Journal.Total(), sink.Journal.Total()-sink.Journal.Dropped(), sink.Journal.Dropped())

	if err := dump(sink, *metricsPath, *tracePath, *eventsPath, *spansPath); err != nil {
		log.Fatal(err)
	}

	if *serveAddr != "" {
		srv, err := obs.Serve(*serveAddr, sink)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving debug endpoints on http://%s (ctrl-c to stop)", srv.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		srv.Close() //nolint:errcheck // exiting anyway
	}
}

// dump writes the run artifacts, treating "-" as stdout and "" as skip.
func dump(sink *obs.Sink, metricsPath, tracePath, eventsPath, spansPath string) error {
	to := func(path, what string, write func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		if path == "-" {
			fmt.Printf("--- %s ---\n", what)
			return write(os.Stdout)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close() //nolint:errcheck // write error takes precedence
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("wrote %s to %s", what, path)
		return nil
	}
	if err := to(metricsPath, "metrics snapshot", sink.WritePrometheus); err != nil {
		return err
	}
	if err := to(tracePath, "Chrome trace", sink.WriteTrace); err != nil {
		return err
	}
	if err := to(eventsPath, "event journal", sink.Journal.WriteJSON); err != nil {
		return err
	}
	return to(spansPath, "span log", sink.WriteSpans)
}
