package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"powerstack/internal/obs"
)

// cmdFlight prints a flight-recorder artifact's summary and, with -dir,
// unpacks its components into standalone files the other subcommands (and
// chrome://tracing) consume directly: metrics.txt, events.json,
// spans.jsonl, open_spans.jsonl, config.json, fault_plan.json,
// result.json.
func cmdFlight(args []string) {
	fs := flag.NewFlagSet("obsdump flight", flag.ExitOnError)
	dir := fs.String("dir", "", "unpack the artifact's components into this directory")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		log.Fatal("usage: obsdump flight [-dir out] flight.json")
	}
	fr, err := obs.ReadFlightFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("flight artifact %s\n", fs.Arg(0))
	fmt.Printf("  captured: %s\n", fr.CapturedAt.Format("2006-01-02 15:04:05 MST"))
	fmt.Printf("  reason:   %s\n", fr.Reason)
	if fr.Scenario != "" {
		fmt.Printf("  scenario: %s\n", fr.Scenario)
	}
	if fr.Error != "" {
		fmt.Printf("  error:    %s\n", fr.Error)
	}
	fmt.Printf("  seed:     %d\n", fr.Seed)
	fmt.Printf("  events:   %d in tail (%d recorded, %d dropped)\n",
		len(fr.Events), fr.EventsTotal, fr.EventsDropped)
	fmt.Printf("  spans:    %d closed, %d still open\n", len(fr.Spans), len(fr.OpenSpans))
	fmt.Printf("  metrics:  %d bytes of Prometheus text\n", len(fr.Metrics))

	if *dir == "" {
		return
	}
	if err := unpackFlight(fr, *dir); err != nil {
		log.Fatal(err)
	}
}

// unpackFlight writes each non-empty component of the record as its own
// file under dir.
func unpackFlight(fr *obs.FlightRecord, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, data []byte) error {
		if len(data) == 0 {
			return nil
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s", path)
		return nil
	}
	jsonl := func(spans []obs.SpanRecord) []byte {
		var b strings.Builder
		for _, sp := range spans {
			line, err := json.Marshal(sp)
			if err != nil {
				continue
			}
			b.Write(line)
			b.WriteByte('\n')
		}
		return []byte(b.String())
	}
	var eventsJSON []byte
	if len(fr.Events) > 0 {
		eventsJSON, _ = json.MarshalIndent(fr.Events, "", "  ") //nolint:errcheck // obs.Event always marshals
	}
	for _, c := range []struct {
		name string
		data []byte
	}{
		{"metrics.txt", []byte(fr.Metrics)},
		{"events.json", eventsJSON},
		{"spans.jsonl", jsonl(fr.Spans)},
		{"open_spans.jsonl", jsonl(fr.OpenSpans)},
		{"config.json", fr.Config},
		{"fault_plan.json", fr.FaultPlan},
		{"result.json", fr.Result},
	} {
		if err := write(c.name, c.data); err != nil {
			return err
		}
	}
	return nil
}
