// Command roofline regenerates Figure 3: the roofline plot of the target
// platform with the synthetic kernel's attainable throughput overlaid,
// verifying the kernel covers the full spectrum from DRAM-bandwidth-bound
// to vector-FMA-bound.
//
// Usage:
//
//	roofline [-vector scalar|xmm|ymm] [-ghz F]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"powerstack/internal/kernel"
	"powerstack/internal/report"
	"powerstack/internal/roofline"
	"powerstack/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("roofline: ")
	vecName := flag.String("vector", "ymm", "vector width of the kernel sweep (scalar, xmm, ymm)")
	ghz := flag.Float64("ghz", 2.1, "core frequency in GHz for the sweep")
	flag.Parse()

	var vec kernel.Vector
	switch *vecName {
	case "scalar":
		vec = kernel.Scalar
	case "xmm":
		vec = kernel.XMM
	case "ymm":
		vec = kernel.YMM
	default:
		log.Fatalf("unknown vector width %q", *vecName)
	}

	plat := roofline.QuartzBroadwell()
	freq := units.Frequency(*ghz) * units.Gigahertz
	plot := report.RooflinePlot{
		Title:    fmt.Sprintf("Figure 3: roofline of %s, kernel sweep at %s (%s)", plat.Name, freq, vec),
		Platform: plat,
		Points:   plat.KernelSweep(vec, freq),
	}
	fmt.Fprint(os.Stdout, plot.String())

	ridge := plat.RidgeIntensity(vec, freq)
	fmt.Printf("\nridge intensity (%s): %.2f FLOPs/byte — kernels below are memory-bound, above compute-bound\n", vec, ridge)
}
