// Command powerload drives a running powerstackd with a multi-tenant
// submission burst and reports client-side latency histograms. It is both
// the service's load generator and its smoke test: submissions round-robin
// across tenants with randomized workloads and sizes, every request's wall
// latency lands in an obs histogram, and after the burst the tool polls
// the instance until enough jobs complete (or -wait lapses).
//
// Usage:
//
//	powerload [-base http://localhost:8080] [-instance main]
//	          [-tenants acme,beta] [-quota "600 W"]
//	          [-jobs N] [-gap 25ms] [-minnodes 1] [-maxnodes 4]
//	          [-miniters 2000] [-maxiters 20000] [-seed N]
//	          [-mincomplete N] [-wait 60s] [-metrics path]
//
// With -quota, the tool installs each tenant's power partition before the
// burst (quota-rejected submissions then count separately — seeing some
// 422s under a tight quota is the expected multi-tenant behavior, not an
// error). -mincomplete makes the exit status assert service liveness: the
// tool fails unless that many jobs complete before -wait lapses, which is
// what CI leans on. -metrics dumps the client-side latency histograms in
// Prometheus text form ("-" = stdout).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"os"
	"strings"
	"time"

	apiv1 "powerstack/api/v1"
	"powerstack/internal/obs"
	"powerstack/internal/units"
)

// latencyBuckets bound the request-latency histograms, in seconds.
var latencyBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1}

// workloads is the client-side view of the daemon's characterized set.
var workloads = []apiv1.WorkloadSpec{
	{Intensity: 0.25, Vector: "ymm", Imbalance: 1},
	{Intensity: 8, Vector: "ymm", Imbalance: 1},
	{Intensity: 32, Vector: "ymm", Imbalance: 1},
	{Intensity: 1, Vector: "ymm", WaitingPct: 50, Imbalance: 2},
	{Intensity: 16, Vector: "ymm", WaitingPct: 75, Imbalance: 3},
	{Intensity: 8, Vector: "xmm", Imbalance: 1},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("powerload: ")
	base := flag.String("base", "http://localhost:8080", "powerstackd base URL")
	instance := flag.String("instance", "", "target instance (default: the daemon's default instance)")
	tenantsFlag := flag.String("tenants", "acme,beta", "comma-separated tenants to submit as")
	quotaStr := flag.String("quota", "", "install this power quota per tenant before the burst (e.g. \"600 W\")")
	jobs := flag.Int("jobs", 40, "submissions in the burst")
	gap := flag.Duration("gap", 25*time.Millisecond, "wall-clock gap between submissions")
	minNodes := flag.Int("minnodes", 1, "minimum nodes per job")
	maxNodes := flag.Int("maxnodes", 4, "maximum nodes per job")
	minIters := flag.Int("miniters", 2000, "minimum iterations per job")
	maxIters := flag.Int("maxiters", 20000, "maximum iterations per job")
	seed := flag.Uint64("seed", 1, "random seed of the burst")
	minComplete := flag.Int("mincomplete", 0, "fail unless this many jobs complete before -wait lapses")
	wait := flag.Duration("wait", 60*time.Second, "how long to wait for completions after the burst")
	metricsPath := flag.String("metrics", "", "dump client latency histograms here in Prometheus text (- = stdout)")
	flag.Parse()

	tenants := strings.Split(*tenantsFlag, ",")
	for i := range tenants {
		tenants[i] = strings.TrimSpace(tenants[i])
	}
	rng := rand.New(rand.NewPCG(*seed, 0x10adbeef))
	sink := obs.New()
	client := &loadClient{base: *base, instance: *instance, sink: sink}

	// Reachability first: a crisp error beats 40 identical dial failures.
	st, err := client.status()
	if err != nil {
		log.Fatalf("daemon unreachable: %v", err)
	}
	log.Printf("target %s: %d nodes, %.0f W budget, state %s, t=%v",
		st.Name, st.Nodes, st.BudgetWatts, st.State, time.Duration(st.NowNs).Round(time.Second))

	if *quotaStr != "" {
		quota, perr := units.ParsePower(*quotaStr)
		if perr != nil {
			log.Fatal(perr)
		}
		for _, tn := range tenants {
			if err := client.setQuota(tn, quota); err != nil {
				log.Fatalf("installing quota for %s: %v", tn, err)
			}
		}
		log.Printf("installed %v quota for %s", quota, strings.Join(tenants, ", "))
	}

	accepted, quotaRejected, failed := 0, 0, 0
	for i := 0; i < *jobs; i++ {
		req := apiv1.SubmitRequest{
			Instance:   *instance,
			Tenant:     tenants[i%len(tenants)],
			Workload:   workloads[rng.IntN(len(workloads))],
			Nodes:      *minNodes + rng.IntN(*maxNodes-*minNodes+1),
			Iterations: *minIters + rng.IntN(*maxIters-*minIters+1),
		}
		code, submitErr := client.submit(req)
		switch {
		case submitErr != nil:
			failed++
			log.Printf("submit %d: %v", i, submitErr)
		case code == http.StatusOK:
			accepted++
		case code == http.StatusUnprocessableEntity:
			quotaRejected++
		default:
			failed++
			log.Printf("submit %d: unexpected status %d", i, code)
		}
		time.Sleep(*gap)
	}
	log.Printf("burst done: %d accepted, %d quota-rejected, %d failed", accepted, quotaRejected, failed)

	deadline := time.Now().Add(*wait)
	for {
		st, err = client.status()
		if err != nil {
			log.Fatalf("status poll: %v", err)
		}
		if st.Completed >= *minComplete || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}

	fmt.Printf("instance: t=%v, %d running, %d queued\n",
		time.Duration(st.NowNs).Round(time.Second), st.RunningJobs, st.QueuedJobs)
	fmt.Printf("jobs:     %d submitted, %d started, %d completed, %d rejected\n",
		st.Submitted, st.Started, st.Completed, st.Rejected)
	if st.Preempted+st.Killed+st.Resumed > 0 {
		fmt.Printf("budget:   %d changes, %d preempted, %d killed, %d resumed\n",
			st.BudgetChanges, st.Preempted, st.Killed, st.Resumed)
	}
	h := sink.Metrics.Histogram("powerload_submit_seconds", latencyBuckets)
	fmt.Printf("latency:  %d submits, p50 %s, p90 %s, p99 %s\n",
		h.Count(), quantile(h, 0.5), quantile(h, 0.9), quantile(h, 0.99))

	if *metricsPath != "" {
		if err := dumpMetrics(sink, *metricsPath); err != nil {
			log.Fatal(err)
		}
	}
	if failed > 0 {
		log.Fatalf("%d submissions failed", failed)
	}
	if *minComplete > 0 && st.Completed < *minComplete {
		log.Fatalf("only %d jobs completed within %v (want >= %d)", st.Completed, *wait, *minComplete)
	}
}

func quantile(h *obs.Histogram, q float64) string {
	return (time.Duration(h.Quantile(q) * float64(time.Second))).Round(10 * time.Microsecond).String()
}

func dumpMetrics(sink *obs.Sink, path string) error {
	if path == "-" {
		return sink.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sink.WritePrometheus(f); err != nil {
		f.Close() //nolint:errcheck // write error takes precedence
		return err
	}
	return f.Close()
}

// loadClient is the thin /v1 client; every request's wall latency lands in
// a per-route obs histogram.
type loadClient struct {
	base     string
	instance string
	sink     *obs.Sink
}

// do issues one request, observes its latency, decodes a 200 body into
// out, and returns the status code. Non-2xx bodies become errors carrying
// the wire code when decodable.
func (c *loadClient) do(method, path string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	c.sink.Metrics.Histogram("powerload_request_seconds", latencyBuckets, "path", path).
		Observe(time.Since(start).Seconds())
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return resp.StatusCode, err
			}
		}
		return resp.StatusCode, nil
	}
	var werr apiv1.Error
	if json.NewDecoder(resp.Body).Decode(&werr) == nil && werr.Code != "" {
		return resp.StatusCode, fmt.Errorf("%s %s: %s (%s)", method, path, werr.Message, werr.Code)
	}
	return resp.StatusCode, fmt.Errorf("%s %s: status %d", method, path, resp.StatusCode)
}

func (c *loadClient) status() (*apiv1.InstanceStatus, error) {
	path := "/v1/instances/" + c.instance
	if c.instance == "" {
		var all []apiv1.InstanceStatus
		if _, err := c.do("GET", "/v1/instances", nil, &all); err != nil {
			return nil, err
		}
		if len(all) == 0 {
			return nil, fmt.Errorf("daemon hosts no instances")
		}
		return &all[0], nil
	}
	var st apiv1.InstanceStatus
	if _, err := c.do("GET", path, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (c *loadClient) setQuota(tenant string, quota units.Power) error {
	_, err := c.do("POST", "/v1/tenants", apiv1.TenantQuotaRequest{
		Instance: c.instance, Tenant: tenant, QuotaWatts: quota.Watts(),
	}, nil)
	return err
}

// submit times the submission into the dedicated histogram and returns
// the status code; 422 (quota) is the caller's to count, not an error.
func (c *loadClient) submit(req apiv1.SubmitRequest) (int, error) {
	var resp apiv1.SubmitResponse
	start := time.Now()
	code, err := c.do("POST", "/v1/submit", req, &resp)
	c.sink.Metrics.Histogram("powerload_submit_seconds", latencyBuckets).
		Observe(time.Since(start).Seconds())
	if code == http.StatusUnprocessableEntity {
		return code, nil
	}
	return code, err
}
