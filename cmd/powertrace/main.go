// Command powertrace regenerates Figure 1: a year of facility power
// telemetry for a Quartz-class system, showing the gap between the rated
// capacity and the actual draw that motivates hardware over-provisioning.
//
// Usage:
//
//	powertrace [-rated MW] [-mean MW] [-months N] [-seed N] [-csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"powerstack/internal/report"
	"powerstack/internal/trace"
	"powerstack/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powertrace: ")
	rated := flag.Float64("rated", 1.35, "rated facility power in MW (the dashed line)")
	mean := flag.Float64("mean", 0.83, "target mean draw in MW")
	months := flag.Int("months", 10, "trace length in months")
	seed := flag.Uint64("seed", 1, "random seed")
	csv := flag.Bool("csv", false, "emit raw samples as CSV instead of the chart")
	flag.Parse()

	cfg := trace.QuartzYear()
	cfg.RatedPower = units.Power(*rated) * units.Megawatt
	cfg.MeanPower = units.Power(*mean) * units.Megawatt
	cfg.Duration = time.Duration(*months) * 30 * 24 * time.Hour
	cfg.Seed = *seed

	tr, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *csv {
		fmt.Println("timestamp,power_watts,daily_average_watts")
		for i, s := range tr.Samples {
			fmt.Printf("%s,%.0f,%.0f\n", s.Time.Format(time.RFC3339), s.Power.Watts(), tr.DailyAverage[i].Watts())
		}
		return
	}

	labels, means := tr.MonthlyAverages()
	chart := report.LineChart{
		Title: "Figure 1: total power consumption (monthly mean of instantaneous draw)",
		YUnit: " MW",
		Max:   cfg.RatedPower.Megawatts(),
	}
	for i, l := range labels {
		chart.Add(l, means[i].Megawatts())
	}
	fmt.Fprint(os.Stdout, chart.String())
	fmt.Printf("\nrated:    %v\nmean:     %v\npeak:     %v\nstranded: %v (provisioned but unused on average)\n",
		tr.Config.RatedPower, tr.MeanPower(), tr.PeakPower(), tr.StrandedPower())
}
