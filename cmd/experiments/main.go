// Command experiments regenerates the paper's evaluation artifacts:
//
//	-table 1    Table I:   Quartz system properties
//	-table 2    Table II:  workloads in each workload mix
//	-table 3    Table III: min/ideal/max power budgets per mix
//	-figure 7   Figure 7:  mean power used by each policy (% of budget)
//	-figure 8   Figure 8:  time/energy/EDP/FLOPS-per-W savings vs StaticCaps
//	-headline   the abstract's headline numbers (max time & energy savings)
//	-all        everything above
//
// The evaluation first characterizes every configuration the chosen mixes
// use (or loads a database saved by cmd/characterize), then runs the
// (mix x policy x budget) grid.
//
// Usage:
//
//	experiments -all [-scale 900] [-iters 100] [-charnodes 100]
//	            [-db char.json] [-seed 1] [-mix WastefulPower] [-parallel 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"powerstack/internal/charz"
	"powerstack/internal/cliconf"
	"powerstack/internal/cluster"
	"powerstack/internal/cpumodel"
	"powerstack/internal/node"
	"powerstack/internal/obs"
	"powerstack/internal/report"
	"powerstack/internal/sim"
	"powerstack/internal/units"
	"powerstack/internal/workload"
)

type options struct {
	scale     int
	iters     int
	charNodes int
	parallel  int
	seed      uint64
	dbPath    string
	mixFilter string
	csvDir    string

	// sink is non-nil when -obsdir is set; it is threaded through the
	// evaluation runners so the grid records metrics and decision events.
	sink   *obs.Sink
	obsDir string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var opt options
	table := flag.Int("table", 0, "regenerate Table N (1-3)")
	figure := flag.Int("figure", 0, "regenerate Figure N (7 or 8)")
	headline := flag.Bool("headline", false, "report the headline savings numbers")
	all := flag.Bool("all", false, "regenerate every table and figure")
	flag.IntVar(&opt.scale, "scale", 180, "total nodes per mix (the paper runs 900)")
	flag.IntVar(&opt.iters, "iters", 50, "iterations per run (the paper uses 100)")
	flag.IntVar(&opt.charNodes, "charnodes", 16, "nodes for characterization runs (the paper uses 100)")
	flag.Uint64Var(&opt.seed, "seed", 1, "random seed")
	flag.IntVar(&opt.parallel, "parallel", 0, "evaluation cells run concurrently (0 = all CPUs, 1 = sequential); any value produces identical results")
	flag.StringVar(&opt.dbPath, "db", "", "characterization database to load (and save if absent)")
	flag.StringVar(&opt.mixFilter, "mix", "", "restrict figures to one mix by name")
	flag.StringVar(&opt.csvDir, "csv", "", "also write figure7.csv and figure8.csv into this directory")
	online := flag.Bool("online", false, "also evaluate the execution-time coordination protocol (future work)")
	flag.StringVar(&opt.obsDir, "obsdir", "", "record observability during the grid and write metrics.txt + trace.json into this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if !*all && *table == 0 && *figure == 0 && !*headline {
		flag.Usage()
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote CPU profile to %s", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote heap profile to %s", *memProfile)
		}()
	}
	if opt.obsDir != "" {
		opt.sink = obs.New()
		defer writeObs(&opt)
	}

	if *all || *table == 1 {
		printTableI()
	}
	if *all || *table == 2 {
		printTableII(opt)
	}

	needGrid := *all || *table == 3 || *figure == 7 || *figure == 8 || *headline
	if !needGrid {
		return
	}

	env := setup(opt)
	if *all || *table == 3 {
		printTableIII(env)
	}
	if *all || *figure == 7 || *figure == 8 || *headline {
		grid := runGrid(env)
		if *all || *figure == 7 {
			printFigure7(grid)
		}
		if *all || *figure == 8 {
			printFigure8(grid)
		}
		if *all || *headline {
			printHeadline(grid)
		}
		if opt.csvDir != "" {
			writeCSVs(opt.csvDir, grid)
		}
		if *online {
			printOnlineComparison(env, grid)
		}
	}
}

// printOnlineComparison runs the execution-time coordination protocol on
// every (mix, budget) cell and compares it against the pre-characterized
// MixedAdaptive and the StaticCaps baseline.
func printOnlineComparison(e *env, grid *sim.Grid) {
	fmt.Println("Execution-time coordination protocol (no pre-characterization)")
	r := sim.NewRunner(e.pool, e.db)
	r.Iters = e.opt.iters
	r.Seed = e.opt.seed + 1000
	r.Obs = e.opt.sink
	r.Parallelism = e.opt.parallel
	tb := report.NewTable("", "Mix", "Budget", "Online vs StaticCaps (time)", "(energy)", "Offline MixedAdaptive (time)", "(energy)")
	for _, mr := range grid.Mixes {
		for _, lvl := range mr.Budgets.Levels() {
			base := mr.Cells[lvl.Name]["StaticCaps"]
			cell, err := r.RunOnlineCell(context.Background(), mr.Mix, lvl.Name, lvl.Power)
			if err != nil {
				log.Fatal(err)
			}
			sOn, err := sim.ComputeSavings(base, cell)
			if err != nil {
				log.Fatal(err)
			}
			sOff := mr.Savings[lvl.Name]["MixedAdaptive"]
			tb.AddRow(mr.Mix.Name, lvl.Name,
				fmt.Sprintf("%+6.2f%%", 100*sOn.Time), fmt.Sprintf("%+6.2f%%", 100*sOn.Energy),
				fmt.Sprintf("%+6.2f%%", 100*sOff.Time), fmt.Sprintf("%+6.2f%%", 100*sOff.Energy))
		}
	}
	fmt.Println(tb.String())
}

// writeCSVs exports the grid as plotting-ready CSV files.
func writeCSVs(dir string, grid *sim.Grid) {
	write := func(name string, fn func(*os.File) error) {
		path := dir + "/" + report.CSVName(name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}
	write("figure7", func(f *os.File) error { return report.WriteFigure7CSV(f, grid) })
	write("figure8", func(f *os.File) error { return report.WriteFigure8CSV(f, grid) })
}

// writeObs dumps the recorded metrics snapshot and Chrome trace.
func writeObs(opt *options) {
	if err := cliconf.DumpDir(opt.sink, opt.obsDir); err != nil {
		log.Fatal(err)
	}
}

// env bundles the evaluation context.
type env struct {
	opt   options
	pool  []*node.Node
	db    *charz.DB
	mixes []workload.Mix
}

func setup(opt options) *env {
	start := time.Now()
	// Reproduce the Section V-A2 variation-control methodology: build a
	// population large enough that its medium-frequency k-means cluster
	// (~46% of nodes) covers the experiment, survey it under 70 W caps,
	// and keep only the medium cluster. Without this step the
	// characterization's per-role maxima are inflated by the fast/slow
	// outlier nodes and the policies lose their redistribution signal —
	// the very reason the paper controls for hardware variation.
	need := opt.scale + opt.charNodes
	population := need * 24 / 10
	c, err := cluster.New(population, cpumodel.Quartz(), cpumodel.QuartzVariation(), opt.seed)
	if err != nil {
		log.Fatal(err)
	}
	medium, cl, err := c.MediumNodes()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("variation survey: %d nodes -> clusters %v (medium kept: %d)", population, cl.Sizes, len(medium))
	if len(medium) < need {
		log.Fatalf("medium cluster has %d nodes, need %d; raise -scale headroom", len(medium), need)
	}
	charPool := medium[:opt.charNodes]
	pool := medium[opt.charNodes : opt.charNodes+opt.scale]

	var db *charz.DB
	if opt.dbPath != "" {
		if loaded, err := charz.LoadFile(opt.dbPath); err == nil {
			db = loaded
			log.Printf("loaded %d characterization entries from %s", db.Len(), opt.dbPath)
		}
	}
	if db == nil {
		log.Printf("characterizing the Table II catalog on %d nodes...", opt.charNodes)
		db, err = charz.CharacterizeAll(context.Background(), workload.Catalog(), charPool,
			charz.Options{MonitorIters: 15, BalancerIters: 50, Seed: opt.seed, NoiseSigma: -1})
		if err != nil {
			log.Fatal(err)
		}
		if opt.dbPath != "" {
			if err := db.SaveFile(opt.dbPath); err != nil {
				log.Fatal(err)
			}
			log.Printf("characterization saved to %s", opt.dbPath)
		}
	}

	mixes, err := workload.Mixes(db, opt.seed)
	if err != nil {
		log.Fatal(err)
	}
	for i := range mixes {
		mixes[i] = mixes[i].Scaled(opt.scale)
	}
	if opt.mixFilter != "" {
		var kept []workload.Mix
		for _, m := range mixes {
			if strings.EqualFold(m.Name, opt.mixFilter) {
				kept = append(kept, m)
			}
		}
		if len(kept) == 0 {
			log.Fatalf("no mix named %q", opt.mixFilter)
		}
		mixes = kept
	}
	log.Printf("setup complete in %v", time.Since(start).Round(time.Millisecond))
	return &env{opt: opt, pool: pool, db: db, mixes: mixes}
}

func runGrid(e *env) *sim.Grid {
	start := time.Now()
	r := sim.NewRunner(e.pool, e.db)
	r.Iters = e.opt.iters
	r.Seed = e.opt.seed + 1000
	r.Obs = e.opt.sink
	r.Parallelism = e.opt.parallel
	grid, err := r.Run(context.Background(), e.mixes)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("evaluation grid (%d mixes x 3 budgets x 5 policies, %d iters) in %v",
		len(e.mixes), e.opt.iters, time.Since(start).Round(time.Millisecond))
	return grid
}

func printTableI() {
	spec := cpumodel.Quartz()
	tb := report.NewTable("Table I: Quartz system properties", "Property", "Value")
	tb.AddRow("CPU", spec.Name)
	tb.AddRow("Cores Per Node", fmt.Sprintf("%d (%d used for the benchmark)", 36, spec.ActiveCores*node.SocketsPerNode))
	tb.AddRow("Operating System", "simulated substrate (TOSS 3 on the real system)")
	tb.AddRow("Thermal Design Power", fmt.Sprintf("%v per CPU socket", spec.TDP))
	tb.AddRow("Minimum RAPL Limit", fmt.Sprintf("%v per CPU socket", spec.MinPowerLimit))
	tb.AddRow("Base Frequency", spec.BaseFreq.String())
	fmt.Println(tb.String())
}

func printTableII(opt options) {
	// Table II needs the Low/High rankings, hence a characterization.
	e := setup(opt)
	tb := report.NewTable("Table II: workloads in each workload mix", "Mix", "Job", "Workload", "Nodes")
	for _, m := range e.mixes {
		for _, j := range m.Jobs {
			tb.AddRow(m.Name, j.ID, j.Config.String(), fmt.Sprintf("%d", j.Nodes))
		}
	}
	fmt.Println(tb.String())
}

func printTableIII(e *env) {
	tb := report.NewTable("Table III: power budgets for each workload mix",
		"Workload Mix", "min", "ideal", "max", "TDP of all CPUs")
	for _, m := range e.mixes {
		b, err := workload.SelectBudgets(m, e.db)
		if err != nil {
			log.Fatal(err)
		}
		tdp := units.Power(m.TotalNodes()) * 240 * units.Watt
		tb.AddRow(m.Name,
			fmt.Sprintf("%.0f kW", b.Min.Kilowatts()),
			fmt.Sprintf("%.0f kW", b.Ideal.Kilowatts()),
			fmt.Sprintf("%.0f kW", b.Max.Kilowatts()),
			fmt.Sprintf("%.0f kW", tdp.Kilowatts()))
	}
	fmt.Println(tb.String())
}

func printFigure7(g *sim.Grid) {
	fmt.Println("Figure 7: mean power used by each policy (percent of system budget)")
	order := []string{"Precharacterized", "StaticCaps", "MinimizeWaste", "JobAdaptive", "MixedAdaptive"}
	for _, mr := range g.Mixes {
		fmt.Printf("\n--- %s ---\n", mr.Mix.Name)
		for _, lvl := range []string{"min", "ideal", "max"} {
			chart := report.BarChart{Title: fmt.Sprintf("%s budget (%v)", lvl, budgetOf(mr, lvl)), Unit: "%", Scale: 150, Width: 45}
			for _, p := range order {
				cell, ok := mr.Cells[lvl][p]
				if !ok {
					continue
				}
				chart.Add(p, 100*cell.Utilization)
			}
			fmt.Print(chart.String())
		}
	}
	fmt.Println()
}

func budgetOf(mr sim.MixResult, lvl string) units.Power {
	for _, l := range mr.Budgets.Levels() {
		if l.Name == lvl {
			return l.Power
		}
	}
	return 0
}

func printFigure8(g *sim.Grid) {
	fmt.Println("Figure 8: percent improvement over the StaticCaps baseline")
	fmt.Println("(* = difference from StaticCaps significant at 95%, Welch's t-test)")
	metrics := []struct {
		name string
		pick func(sim.Savings) (value, ci float64)
		sig  func(sim.Savings) bool
	}{
		{"Time Savings", func(s sim.Savings) (float64, float64) { return 100 * s.Time, 100 * s.TimeCI },
			func(s sim.Savings) bool { return s.TimeSignificant }},
		{"Energy Savings", func(s sim.Savings) (float64, float64) { return 100 * s.Energy, 100 * s.EnergyCI },
			func(s sim.Savings) bool { return s.EnergySignificant }},
		{"EDP Savings", func(s sim.Savings) (float64, float64) { return 100 * s.EDP, 0 }, nil},
		{"FLOPS/W Increase", func(s sim.Savings) (float64, float64) { return 100 * s.FlopsPerW, 0 }, nil},
	}
	for _, mr := range g.Mixes {
		fmt.Printf("\n--- %s ---\n", mr.Mix.Name)
		tb := report.NewTable("", "Metric", "Budget", "MinimizeWaste", "JobAdaptive", "MixedAdaptive")
		for _, metric := range metrics {
			for _, lvl := range []string{"min", "ideal", "max"} {
				row := []string{metric.name, lvl}
				for _, p := range []string{"MinimizeWaste", "JobAdaptive", "MixedAdaptive"} {
					s, ok := mr.Savings[lvl][p]
					if !ok {
						row = append(row, "-")
						continue
					}
					v, ci := metric.pick(s)
					mark := ""
					if metric.sig != nil && metric.sig(s) {
						mark = "*"
					}
					if ci > 0 {
						row = append(row, fmt.Sprintf("%+6.2f%%%s ±%.2f", v, mark, ci))
					} else {
						row = append(row, fmt.Sprintf("%+6.2f%%%s", v, mark))
					}
				}
				tb.AddRow(row...)
			}
		}
		fmt.Print(tb.String())
	}
	fmt.Println()
}

func printHeadline(g *sim.Grid) {
	h := g.FindHeadline()
	fmt.Println("Headline results (MixedAdaptive vs StaticCaps)")
	fmt.Printf("  max time savings:   %5.2f%% (±%.2f) at %s/%s  [paper: up to 7%% at HighPower/min]\n",
		100*h.MaxTimeSavings.Time, 100*h.MaxTimeSavings.TimeCI, h.MaxTimeSavings.Mix, h.MaxTimeSavings.Budget)
	fmt.Printf("  max energy savings: %5.2f%% (±%.2f) at %s/%s  [paper: up to 11%% at WastefulPower/max]\n",
		100*h.MaxEnergySavings.Energy, 100*h.MaxEnergySavings.EnergyCI, h.MaxEnergySavings.Mix, h.MaxEnergySavings.Budget)
}
