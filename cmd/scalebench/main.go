// Command scalebench gates the 100k-node scale push: it times the facility
// simulation's scale path (struct-of-arrays pools, hierarchical replan
// rounds, incremental telemetry, cached cap encoding) against the compat
// path (the pre-refactor flat replan and recursive sampling) across cluster
// sizes, and writes the comparison to BENCH_scale.json.
//
// The compat lane runs only up to -compatmax nodes (default 10000) — the
// point of the scale path is that the compat path stops being usable above
// that — while the scale lane runs every size, including 100000 nodes for a
// simulated week. A third lane re-runs the scale path with the parallel
// replan pipeline (-parallel workers) and verifies, in-process, that its
// Result is byte-identical to the sequential scale lane's before reporting
// its wall clock: the parallel lane is only a speedup if it is also exact.
// The headline number is the speedup at the largest size both exact lanes
// ran.
//
// Usage:
//
//	scalebench [-sizes 1000,10000,100000] [-days 7] [-compatmax 10000]
//	           [-telemetry 30m] [-interarrival 3m] [-seed 7] [-parallel N]
//	           [-out BENCH_scale.json] [-cpuprofile prof.out] [-memprofile mem.out]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"powerstack/internal/charz"
	"powerstack/internal/cliconf"
	"powerstack/internal/cluster"
	"powerstack/internal/cpumodel"
	"powerstack/internal/facility"
	"powerstack/internal/kernel"
	"powerstack/internal/node"
	"powerstack/internal/policy"
	"powerstack/internal/units"
)

type laneReport struct {
	Seconds          float64 `json:"seconds"`
	Parallelism      int     `json:"parallelism,omitempty"`
	EventsDispatched int     `json:"events_dispatched"`
	Submitted        int     `json:"submitted"`
	Completed        int     `json:"completed"`
	MeanPowerW       float64 `json:"mean_power_watts"`
	TotalEnergyJ     float64 `json:"total_energy_joules"`
}

type sizeReport struct {
	Nodes    int         `json:"nodes"`
	Compat   *laneReport `json:"compat,omitempty"`
	Scale    *laneReport `json:"scale"`
	Parallel *laneReport `json:"parallel,omitempty"`
	Speedup  float64     `json:"speedup,omitempty"`
	// ParallelSpeedup is the sequential scale lane's wall clock over the
	// parallel lane's. It tracks GOMAXPROCS: on a single-core host the
	// pipeline runs inline and the ratio sits near 1.
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
	// ParallelExact records that the parallel lane's Result was verified
	// byte-identical to the sequential scale lane's.
	ParallelExact bool `json:"parallel_exact,omitempty"`
}

type report struct {
	DurationHours     float64 `json:"duration_hours"`
	TelemetrySeconds  float64 `json:"telemetry_every_seconds"`
	InterarrivalHours float64 `json:"interarrival_hours"`
	Seed              uint64  `json:"seed"`
	// GOMAXPROCS is the host's scheduler width for the run — the context
	// every parallel-lane wall clock must be read in.
	GOMAXPROCS int          `json:"gomaxprocs"`
	Sizes      []sizeReport `json:"sizes"`
	// SpeedupAtLargestCommon is the headline: compat seconds over scale
	// seconds at the largest size both lanes completed.
	SpeedupAtLargestCommon float64 `json:"speedup_at_largest_common"`
}

func env(nNodes int) ([]*node.Node, *charz.DB, []kernel.Config, error) {
	c, err := cluster.New(nNodes+4, cpumodel.Quartz(), cpumodel.QuartzVariation(), 41)
	if err != nil {
		return nil, nil, nil, err
	}
	scratch := c.Nodes()[nNodes:]
	workloads := []kernel.Config{
		{Intensity: 8, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 0.5, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 2},
		{Intensity: 32, Vector: kernel.XMM, Imbalance: 1},
	}
	db, err := charz.CharacterizeAll(context.Background(), workloads, scratch, charz.Options{
		MonitorIters: 5, BalancerIters: 30, Seed: 3, NoiseSigma: 0,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return c.Nodes()[:nNodes], db, workloads, nil
}

// runLane runs one lane and returns its timing plus the canonical Result
// JSON, the byte-identity token the parallel lane is checked against.
func runLane(nNodes int, mode string, parallelism int, duration, telemetry, interarrival time.Duration, seed uint64) (*laneReport, string, error) {
	// Fresh pool per lane: the simulation mutates node state.
	nodes, db, workloads, err := env(nNodes)
	if err != nil {
		return nil, "", err
	}
	cfg := facility.Config{
		Engine:           facility.EngineEvent,
		ScaleMode:        mode,
		Parallelism:      parallelism,
		Nodes:            nodes,
		DB:               db,
		Policy:           policy.MixedAdaptive{},
		SystemBudget:     units.Power(nNodes) * 200 * units.Watt,
		MeanInterarrival: interarrival,
		// Long jobs at sizes that keep a large slice of the pool busy, so
		// every replan round re-caps a meaningful host set.
		MinJobIterations: 700000,
		MaxJobIterations: 1000000,
		JobSizes:         []int{8, 16, 32},
		Workloads:        workloads,
		Duration:         duration,
		Tick:             30 * time.Second,
		TelemetryEvery:   telemetry,
		Seed:             seed,
	}
	// The previous lane's discarded pool is garbage; collect it now so its
	// sweep cost doesn't land inside this lane's timed window.
	runtime.GC()
	lane := mode
	if parallelism > 0 {
		lane = fmt.Sprintf("par:%d", parallelism)
	}
	log.Printf("%6d nodes, %-6s lane: simulating %v...", nNodes, lane, duration)
	start := time.Now()
	res, err := facility.Run(context.Background(), cfg)
	if err != nil {
		return nil, "", err
	}
	wall := time.Since(start)
	canon, err := json.Marshal(res)
	if err != nil {
		return nil, "", err
	}
	lr := &laneReport{
		Seconds:          wall.Seconds(),
		Parallelism:      parallelism,
		EventsDispatched: res.EventsDispatched,
		Submitted:        res.Submitted,
		Completed:        res.Completed,
		MeanPowerW:       res.MeanPower.Watts(),
		TotalEnergyJ:     res.TotalEnergy.Joules(),
	}
	log.Printf("%6d nodes, %-6s lane: %v wall, %d events, %d/%d jobs completed",
		nNodes, lane, wall.Round(time.Millisecond), lr.EventsDispatched, lr.Completed, lr.Submitted)
	return lr, string(canon), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("scalebench: ")
	sizes := flag.String("sizes", "1000,10000,100000", "comma-separated cluster sizes")
	days := flag.Float64("days", 7, "simulated span in days")
	compatMax := flag.Int("compatmax", 10000, "largest size the compat lane runs at")
	telemetry := flag.Duration("telemetry", 30*time.Minute, "telemetry sampling cadence")
	interarrival := flag.Duration("interarrival", 3*time.Minute, "mean job inter-arrival time")
	seed := flag.Uint64("seed", 7, "random seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "replan pipeline workers for the parallel lane (0 skips the lane)")
	out := flag.String("out", "BENCH_scale.json", "output JSON path")
	profiles := cliconf.RegisterProfiles(flag.CommandLine)
	flag.Parse()

	if err := profiles.Start(); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := profiles.Stop(); err != nil {
			log.Fatal(err)
		}
	}()

	var ns []int
	for _, f := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			log.Fatalf("-sizes: bad size %q", f)
		}
		ns = append(ns, n)
	}

	duration := time.Duration(*days * 24 * float64(time.Hour))
	rep := report{
		DurationHours:     *days * 24,
		TelemetrySeconds:  telemetry.Seconds(),
		InterarrivalHours: interarrival.Hours(),
		Seed:              *seed,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
	}
	for _, n := range ns {
		sr := sizeReport{Nodes: n}
		if n <= *compatMax {
			lr, _, err := runLane(n, facility.ScaleCompat, 0, duration, *telemetry, *interarrival, *seed)
			if err != nil {
				log.Fatal(err)
			}
			sr.Compat = lr
		}
		lr, scaleCanon, err := runLane(n, facility.ScaleOn, 0, duration, *telemetry, *interarrival, *seed)
		if err != nil {
			log.Fatal(err)
		}
		sr.Scale = lr
		if *parallel > 0 {
			pr, parCanon, err := runLane(n, facility.ScaleOn, *parallel, duration, *telemetry, *interarrival, *seed)
			if err != nil {
				log.Fatal(err)
			}
			if parCanon != scaleCanon {
				log.Fatalf("%d nodes: parallel lane (workers=%d) diverged from sequential scale lane", n, *parallel)
			}
			sr.Parallel = pr
			sr.ParallelExact = true
			if pr.Seconds > 0 {
				sr.ParallelSpeedup = sr.Scale.Seconds / pr.Seconds
				log.Printf("%6d nodes: parallel lane exact, %.2fx vs sequential scale (workers=%d, GOMAXPROCS=%d)",
					n, sr.ParallelSpeedup, *parallel, rep.GOMAXPROCS)
			}
		}
		if sr.Compat != nil && sr.Scale.Seconds > 0 {
			sr.Speedup = sr.Compat.Seconds / sr.Scale.Seconds
			rep.SpeedupAtLargestCommon = sr.Speedup
			log.Printf("%6d nodes: %.2fx speedup (compat %.2fs / scale %.2fs)",
				n, sr.Speedup, sr.Compat.Seconds, sr.Scale.Seconds)
		}
		rep.Sizes = append(rep.Sizes, sr)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
