// Command scalebench gates the 100k-node scale push: it times the facility
// simulation's scale path (struct-of-arrays pools, hierarchical replan
// rounds, linear telemetry sweeps, cached cap encoding) against the compat
// path (the pre-refactor flat replan and recursive sampling) across cluster
// sizes, and writes the comparison to BENCH_scale.json.
//
// The compat lane runs only up to -compatmax nodes (default 10000) — the
// point of the scale path is that the compat path stops being usable above
// that — while the scale lane runs every size, including 100000 nodes for a
// simulated week. The headline number is the speedup at the largest size
// both lanes ran.
//
// Usage:
//
//	scalebench [-sizes 1000,10000,100000] [-days 7] [-compatmax 10000]
//	           [-telemetry 30m] [-interarrival 3m] [-seed 7]
//	           [-out BENCH_scale.json] [-cpuprofile prof.out]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"powerstack/internal/charz"
	"powerstack/internal/cluster"
	"powerstack/internal/cpumodel"
	"powerstack/internal/facility"
	"powerstack/internal/kernel"
	"powerstack/internal/node"
	"powerstack/internal/policy"
	"powerstack/internal/units"
)

type laneReport struct {
	Seconds          float64 `json:"seconds"`
	EventsDispatched int     `json:"events_dispatched"`
	Submitted        int     `json:"submitted"`
	Completed        int     `json:"completed"`
	MeanPowerW       float64 `json:"mean_power_watts"`
	TotalEnergyJ     float64 `json:"total_energy_joules"`
}

type sizeReport struct {
	Nodes   int         `json:"nodes"`
	Compat  *laneReport `json:"compat,omitempty"`
	Scale   *laneReport `json:"scale"`
	Speedup float64     `json:"speedup,omitempty"`
}

type report struct {
	DurationHours     float64      `json:"duration_hours"`
	TelemetrySeconds  float64      `json:"telemetry_every_seconds"`
	InterarrivalHours float64      `json:"interarrival_hours"`
	Seed              uint64       `json:"seed"`
	Sizes             []sizeReport `json:"sizes"`
	// SpeedupAtLargestCommon is the headline: compat seconds over scale
	// seconds at the largest size both lanes completed.
	SpeedupAtLargestCommon float64 `json:"speedup_at_largest_common"`
}

func env(nNodes int) ([]*node.Node, *charz.DB, []kernel.Config, error) {
	c, err := cluster.New(nNodes+4, cpumodel.Quartz(), cpumodel.QuartzVariation(), 41)
	if err != nil {
		return nil, nil, nil, err
	}
	scratch := c.Nodes()[nNodes:]
	workloads := []kernel.Config{
		{Intensity: 8, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 0.5, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 2},
		{Intensity: 32, Vector: kernel.XMM, Imbalance: 1},
	}
	db, err := charz.CharacterizeAll(context.Background(), workloads, scratch, charz.Options{
		MonitorIters: 5, BalancerIters: 30, Seed: 3, NoiseSigma: 0,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return c.Nodes()[:nNodes], db, workloads, nil
}

func runLane(nNodes int, mode string, duration, telemetry, interarrival time.Duration, seed uint64) (*laneReport, error) {
	// Fresh pool per lane: the simulation mutates node state.
	nodes, db, workloads, err := env(nNodes)
	if err != nil {
		return nil, err
	}
	cfg := facility.Config{
		Engine:           facility.EngineEvent,
		ScaleMode:        mode,
		Nodes:            nodes,
		DB:               db,
		Policy:           policy.MixedAdaptive{},
		SystemBudget:     units.Power(nNodes) * 200 * units.Watt,
		MeanInterarrival: interarrival,
		// Long jobs at sizes that keep a large slice of the pool busy, so
		// every replan round re-caps a meaningful host set.
		MinJobIterations: 700000,
		MaxJobIterations: 1000000,
		JobSizes:         []int{8, 16, 32},
		Workloads:        workloads,
		Duration:         duration,
		Tick:             30 * time.Second,
		TelemetryEvery:   telemetry,
		Seed:             seed,
	}
	// The previous lane's discarded pool is garbage; collect it now so its
	// sweep cost doesn't land inside this lane's timed window.
	runtime.GC()
	log.Printf("%6d nodes, %-6s lane: simulating %v...", nNodes, mode, duration)
	start := time.Now()
	res, err := facility.Run(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	lr := &laneReport{
		Seconds:          wall.Seconds(),
		EventsDispatched: res.EventsDispatched,
		Submitted:        res.Submitted,
		Completed:        res.Completed,
		MeanPowerW:       res.MeanPower.Watts(),
		TotalEnergyJ:     res.TotalEnergy.Joules(),
	}
	log.Printf("%6d nodes, %-6s lane: %v wall, %d events, %d/%d jobs completed",
		nNodes, mode, wall.Round(time.Millisecond), lr.EventsDispatched, lr.Completed, lr.Submitted)
	return lr, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("scalebench: ")
	sizes := flag.String("sizes", "1000,10000,100000", "comma-separated cluster sizes")
	days := flag.Float64("days", 7, "simulated span in days")
	compatMax := flag.Int("compatmax", 10000, "largest size the compat lane runs at")
	telemetry := flag.Duration("telemetry", 30*time.Minute, "telemetry sampling cadence")
	interarrival := flag.Duration("interarrival", 3*time.Minute, "mean job inter-arrival time")
	seed := flag.Uint64("seed", 7, "random seed")
	out := flag.String("out", "BENCH_scale.json", "output JSON path")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole sweep here")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var ns []int
	for _, f := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			log.Fatalf("-sizes: bad size %q", f)
		}
		ns = append(ns, n)
	}

	duration := time.Duration(*days * 24 * float64(time.Hour))
	rep := report{
		DurationHours:     *days * 24,
		TelemetrySeconds:  telemetry.Seconds(),
		InterarrivalHours: interarrival.Hours(),
		Seed:              *seed,
	}
	for _, n := range ns {
		sr := sizeReport{Nodes: n}
		if n <= *compatMax {
			lr, err := runLane(n, facility.ScaleCompat, duration, *telemetry, *interarrival, *seed)
			if err != nil {
				log.Fatal(err)
			}
			sr.Compat = lr
		}
		lr, err := runLane(n, facility.ScaleOn, duration, *telemetry, *interarrival, *seed)
		if err != nil {
			log.Fatal(err)
		}
		sr.Scale = lr
		if sr.Compat != nil && sr.Scale.Seconds > 0 {
			sr.Speedup = sr.Compat.Seconds / sr.Scale.Seconds
			rep.SpeedupAtLargestCommon = sr.Speedup
			log.Printf("%6d nodes: %.2fx speedup (compat %.2fs / scale %.2fs)",
				n, sr.Speedup, sr.Compat.Seconds, sr.Scale.Seconds)
		}
		rep.Sizes = append(rep.Sizes, sr)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
