// Command facility runs the machine-room simulation end to end: Poisson
// job arrivals, power-aware scheduling against node and watt budgets, a
// Section III policy distributing per-host caps, and facility-level
// telemetry — producing, bottom-up, the kind of power trace Figure 1 shows
// top-down, along with scheduler statistics.
//
// With chaos flags, a deterministic fault plan drives crashes, MSR faults,
// and telemetry dropouts through the run, exercising the stack's graceful
// degradation (quarantine, requeue, rejoin, sample holds).
//
// Usage:
//
//	facility [-nodes N] [-hours H] [-budget "50 kW"] [-policy MixedAdaptive]
//	         [-interarrival 45s] [-seed N] [-engine event|tick] [-telemetry 5m]
//	         [-budgetsteps "2h=8 kW,3h=12 kW"] [-emergency preempt|throttle|kill]
//	         [-checkpoint K] [-budgetdrops N]
//	         [-crashes N] [-msrfaults N] [-dropouts N] [-slownodes N] [-faultseed N]
//	         [-metrics path] [-trace path] [-spans path] [-events path]
//	         [-debug addr]
//
// The -engine flag selects the simulation core: "event" (the default)
// advances a virtual clock between arrivals, completions, faults, and
// telemetry samples; "tick" replays the fixed-step loop the event engine
// is golden-tested against. -telemetry sets the sampling cadence (under
// the tick engine it must be a multiple of the tick).
//
// -budgetsteps makes the system budget a timeline: comma-separated
// "offset=power" pairs schedule budget changes at those offsets from run
// start. -budgetdrops adds N randomized demand-response emergencies
// (temporary fractional budget drops) to the generated fault plan.
// -emergency picks the response when a drop strands running jobs above the
// new budget — preempt at the last checkpoint (default), throttle
// everyone, or kill — and -checkpoint sets the checkpoint cadence in
// iterations (0 disables; preempted jobs then restart from scratch).
//
// The artifact flags enable observability and dump the run's telemetry:
// -metrics writes a Prometheus snapshot, -trace a Chrome trace_event JSON
// whose events and spans are stamped with virtual (simulated) time, -spans
// the raw span log as JSONL (render with "obsdump spans"), and -events the
// decision-event journal. "-" writes to stdout.
//
// -debug serves the live observability surface (Prometheus /metrics, SSE
// streams, pprof) on the given address for the duration of the run and
// drains it — SSE clients included — before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"powerstack"
	"powerstack/internal/cliconf"
	"powerstack/internal/kernel"
	"powerstack/internal/report"
	"powerstack/internal/units"
	"powerstack/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("facility: ")
	nNodes := flag.Int("nodes", 64, "cluster size")
	hours := flag.Float64("hours", 4, "simulated span in hours")
	policyName := flag.String("policy", "MixedAdaptive", "power policy for the running set")
	interarrival := flag.Duration("interarrival", 45*time.Second, "mean job inter-arrival time")
	seed := flag.Uint64("seed", 1, "random seed")
	engineName := flag.String("engine", powerstack.FacilityEngineEvent, "simulation core: event or tick")
	telemetry := flag.Duration("telemetry", 0, "telemetry sampling cadence (default: one sample per tick)")
	debugAddr := flag.String("debug", "", "serve the live debug surface (/metrics, /stream/*, pprof) here during the run (\":0\" picks a port)")
	budgetFlags := cliconf.RegisterBudget(flag.CommandLine, workload.CheckpointInterval(2000, 20000))
	faultFlags := cliconf.RegisterFaults(flag.CommandLine)
	artifacts := cliconf.RegisterArtifacts(flag.CommandLine)
	flag.Parse()
	ctx := context.Background()

	pol, err := powerstack.PolicyByName(*policyName)
	if err != nil {
		log.Fatal(err)
	}

	budget, err := budgetFlags.Power(units.Power(*nNodes) * 200 * units.Watt)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := powerstack.NewSystem(powerstack.Options{ClusterSize: *nNodes + 8, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	workloads := []kernel.Config{
		{Intensity: 0.25, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 8, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 32, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 1, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 2},
		{Intensity: 16, Vector: kernel.YMM, WaitingPct: 75, Imbalance: 3},
		{Intensity: 8, Vector: kernel.XMM, Imbalance: 1},
	}
	log.Printf("characterizing %d workloads...", len(workloads))
	if err := sys.Characterize(ctx, workloads, powerstack.QuickCharacterization()); err != nil {
		log.Fatal(err)
	}

	duration := time.Duration(*hours * float64(time.Hour))
	if artifacts.Enabled() {
		sys.EnableObservability()
	}
	if faultFlags.Any() {
		var ids []string
		for _, n := range sys.Pool {
			ids = append(ids, n.ID)
		}
		sys.Faults = faultFlags.Plan(ids, duration)
		log.Printf("fault plan: %s", faultFlags)
		sys.EnableObservability()
	}

	if *debugAddr != "" {
		srv, err := sys.ServeDebug(ctx, *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug surface on http://%s", srv.Addr())
		defer func() {
			drain, cancel := context.WithTimeout(ctx, 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(drain); err != nil {
				log.Printf("debug drain: %v", err)
			}
		}()
	}

	steps, err := budgetFlags.Steps()
	if err != nil {
		log.Fatal(err)
	}

	cfg := powerstack.FacilityConfig{
		Engine:           *engineName,
		Policy:           pol,
		SystemBudget:     budget,
		BudgetSteps:      steps,
		Emergency:        powerstack.EmergencyPolicy(budgetFlags.Emergency),
		CheckpointEvery:  budgetFlags.Checkpoint,
		MeanInterarrival: *interarrival,
		MinJobIterations: 2000,
		MaxJobIterations: 20000,
		JobSizes:         []int{2, 4, 8, 16},
		Workloads:        workloads,
		Duration:         duration,
		Tick:             time.Minute,
		TelemetryEvery:   *telemetry,
		Seed:             *seed,
	}
	log.Printf("simulating %v over %d nodes under %v (%s policy)...",
		cfg.Duration, len(sys.Pool), budget, pol.Name())
	start := time.Now()
	res, err := sys.RunFacility(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	work := fmt.Sprintf("%d events dispatched", res.EventsDispatched)
	if cfg.Engine == powerstack.FacilityEngineTick {
		work = fmt.Sprintf("%d ticks simulated", res.TicksSimulated)
	}
	log.Printf("done in %v wall time (%s engine, %s)",
		time.Since(start).Round(time.Millisecond), cfg.Engine, work)

	// Downsample the trace into a line chart.
	chart := report.LineChart{
		Title: fmt.Sprintf("facility power (budget %v)", budget),
		YUnit: " kW",
		Max:   budget.Kilowatts(),
		Width: 56,
	}
	buckets := 24
	if len(res.Trace) < buckets {
		buckets = len(res.Trace)
	}
	per := len(res.Trace) / buckets
	for b := 0; b < buckets; b++ {
		sum := 0.0
		for i := b * per; i < (b+1)*per; i++ {
			sum += res.Trace[i].Power.Kilowatts()
		}
		label := res.Trace[b*per].Time.Format("15:04")
		chart.Add(label, sum/float64(per))
	}
	fmt.Fprint(os.Stdout, chart.String())

	fmt.Printf("\njobs:  %d submitted, %d started, %d completed\n", res.Submitted, res.Started, res.Completed)
	fmt.Printf("queue: mean wait %v\n", res.MeanQueueWait.Round(time.Second))
	fmt.Printf("nodes: %.1f%% mean utilization\n", 100*res.MeanNodeUtilization)
	fmt.Printf("power: mean %v, peak %v (budget %v, %d violation ticks)\n",
		res.MeanPower, res.PeakPower, budget, res.BudgetViolationTicks)
	fmt.Printf("energy: %v CPU total\n", res.TotalEnergy)
	if res.Quarantined+res.Requeued+res.Rejoined > 0 {
		fmt.Printf("faults: %d nodes quarantined, %d rejoined, %d jobs requeued\n",
			res.Quarantined, res.Rejoined, res.Requeued)
	}
	if res.BudgetChanges > 0 {
		fmt.Printf("budget: %d changes, %d jobs preempted, %d killed, %d resumed from checkpoint, %d rejected\n",
			res.BudgetChanges, res.Preempted, res.Killed, res.Resumed, res.Rejected)
	}

	if artifacts.Enabled() {
		if err := artifacts.Dump(sys.Obs); err != nil {
			log.Fatal(err)
		}
	}
}
