// Command facility runs the machine-room simulation end to end: Poisson
// job arrivals, power-aware scheduling against node and watt budgets, a
// Section III policy distributing per-host caps, and facility-level
// telemetry — producing, bottom-up, the kind of power trace Figure 1 shows
// top-down, along with scheduler statistics.
//
// Usage:
//
//	facility [-nodes N] [-hours H] [-budget "50 kW"] [-policy MixedAdaptive]
//	         [-interarrival 45s] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"powerstack/internal/charz"
	"powerstack/internal/cluster"
	"powerstack/internal/cpumodel"
	"powerstack/internal/facility"
	"powerstack/internal/kernel"
	"powerstack/internal/policy"
	"powerstack/internal/report"
	"powerstack/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("facility: ")
	nNodes := flag.Int("nodes", 64, "cluster size")
	hours := flag.Float64("hours", 4, "simulated span in hours")
	budgetStr := flag.String("budget", "", "system power budget (e.g. \"12 kW\"; default 200 W/node)")
	policyName := flag.String("policy", "MixedAdaptive", "power policy for the running set")
	interarrival := flag.Duration("interarrival", 45*time.Second, "mean job inter-arrival time")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	var pol policy.Policy
	for _, p := range policy.All() {
		if strings.EqualFold(p.Name(), *policyName) {
			pol = p
		}
	}
	if pol == nil {
		log.Fatalf("unknown policy %q", *policyName)
	}

	budget := units.Power(*nNodes) * 200 * units.Watt
	if *budgetStr != "" {
		var err error
		budget, err = units.ParsePower(*budgetStr)
		if err != nil {
			log.Fatal(err)
		}
	}

	c, err := cluster.New(*nNodes+8, cpumodel.Quartz(), cpumodel.QuartzVariation(), *seed)
	if err != nil {
		log.Fatal(err)
	}
	workloads := []kernel.Config{
		{Intensity: 0.25, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 8, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 32, Vector: kernel.YMM, Imbalance: 1},
		{Intensity: 1, Vector: kernel.YMM, WaitingPct: 50, Imbalance: 2},
		{Intensity: 16, Vector: kernel.YMM, WaitingPct: 75, Imbalance: 3},
		{Intensity: 8, Vector: kernel.XMM, Imbalance: 1},
	}
	log.Printf("characterizing %d workloads...", len(workloads))
	db, err := charz.CharacterizeAll(workloads, c.Nodes()[*nNodes:], charz.Options{
		MonitorIters: 10, BalancerIters: 40, Seed: *seed, NoiseSigma: -1,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := facility.Config{
		Nodes:            c.Nodes()[:*nNodes],
		DB:               db,
		Policy:           pol,
		SystemBudget:     budget,
		MeanInterarrival: *interarrival,
		MinJobIterations: 2000,
		MaxJobIterations: 20000,
		JobSizes:         []int{2, 4, 8, 16},
		Workloads:        workloads,
		Duration:         time.Duration(*hours * float64(time.Hour)),
		Tick:             time.Minute,
		Seed:             *seed,
	}
	log.Printf("simulating %v over %d nodes under %v (%s policy)...",
		cfg.Duration, *nNodes, budget, pol.Name())
	start := time.Now()
	res, err := facility.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("done in %v wall time", time.Since(start).Round(time.Millisecond))

	// Downsample the trace into a line chart.
	chart := report.LineChart{
		Title: fmt.Sprintf("facility power (budget %v)", budget),
		YUnit: " kW",
		Max:   budget.Kilowatts(),
		Width: 56,
	}
	buckets := 24
	if len(res.Trace) < buckets {
		buckets = len(res.Trace)
	}
	per := len(res.Trace) / buckets
	for b := 0; b < buckets; b++ {
		sum := 0.0
		for i := b * per; i < (b+1)*per; i++ {
			sum += res.Trace[i].Power.Kilowatts()
		}
		label := res.Trace[b*per].Time.Format("15:04")
		chart.Add(label, sum/float64(per))
	}
	fmt.Fprint(os.Stdout, chart.String())

	fmt.Printf("\njobs:  %d submitted, %d started, %d completed\n", res.Submitted, res.Started, res.Completed)
	fmt.Printf("queue: mean wait %v\n", res.MeanQueueWait.Round(time.Second))
	fmt.Printf("nodes: %.1f%% mean utilization\n", 100*res.MeanNodeUtilization)
	fmt.Printf("power: mean %v, peak %v (budget %v, %d violation ticks)\n",
		res.MeanPower, res.PeakPower, budget, res.BudgetViolationTicks)
	fmt.Printf("energy: %v CPU total\n", res.TotalEnergy)
}
